//! Perf-regression gating: compares a fresh `BENCH_scan.json` against the
//! committed baseline trajectory in `results/monitor/bench_baseline.json`.
//!
//! Wall-clock benchmarks are noisy, so the gate is deliberately
//! conservative:
//!
//! * Per shard count it compares **min-of-reps** — the minimum is the
//!   least noisy location statistic for a "how fast can this go"
//!   benchmark (medians drift with scheduler load; minima only improve
//!   with more reps).
//! * The baseline is the best min over the whole committed **trajectory**
//!   of runs, not just the latest — one lucky historical run should keep
//!   counting.
//! * A shard count regresses only if
//!   `current_min * 1000 > baseline_best * (1000 + tolerance_permille)`.
//!   The committed default tolerance is 500‰ (1.5×): generous enough for
//!   shared CI machines, tight enough to catch a real algorithmic
//!   regression (the serial-vs-sharded gap the benchmark exists to watch
//!   is itself bounded by the cross-check in `bench_scan`).
//!
//! Everything here is pure parsing + integer comparison; reading clocks
//! stays in vp-bench where lint rule d2 allows it.

use serde_json::Value;

/// One (targets, shard-count) entry of a `vp-bench-scan/v1` series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchRun {
    /// Hitlist scale of this entry. Entries without their own `targets`
    /// field (pre-multi-scale documents) inherit the document-level one.
    pub targets: u64,
    pub shards: u64,
    /// True when the entry ran on the OS-thread executor
    /// (`ShardExecutor::host_parallel`); absent in pre-threading
    /// documents, which parse as `false` (the serial executor).
    pub threaded: bool,
    pub reps: u64,
    pub min_ns: u64,
    pub median_ns: u64,
    pub p90_ns: u64,
    pub max_ns: u64,
}

/// A parsed `BENCH_scan.json` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchScanDoc {
    /// Monotonic run counter (`run` field); 0 for pre-counter documents.
    pub run: u64,
    pub targets: u64,
    pub series: Vec<BenchRun>,
}

/// The committed baseline: a trajectory of past bench documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchBaseline {
    pub tolerance_permille: u64,
    pub runs: Vec<BenchScanDoc>,
}

fn parse_series(doc: &Value, doc_targets: u64, what: &str) -> Result<Vec<BenchRun>, String> {
    let Some(series) = doc.get("series").and_then(Value::as_array) else {
        return Err(format!("{what}: missing series array"));
    };
    let mut runs = Vec::with_capacity(series.len());
    for (i, entry) in series.iter().enumerate() {
        let field = |key: &str| -> Result<u64, String> {
            entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{what}: series[{i}] missing {key}"))
        };
        runs.push(BenchRun {
            targets: entry
                .get("targets")
                .and_then(Value::as_u64)
                .unwrap_or(doc_targets),
            shards: field("shards")?,
            threaded: entry
                .get("threaded")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            reps: field("reps")?,
            min_ns: field("min_ns")?,
            median_ns: field("median_ns")?,
            p90_ns: field("p90_ns")?,
            max_ns: field("max_ns")?,
        });
    }
    Ok(runs)
}

fn parse_scan_doc(doc: &Value, what: &str) -> Result<BenchScanDoc, String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some("vp-bench-scan/v1") => {}
        other => return Err(format!("{what}: unexpected schema {other:?}")),
    }
    let targets = doc
        .get("targets")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{what}: missing targets"))?;
    Ok(BenchScanDoc {
        run: doc.get("run").and_then(Value::as_u64).unwrap_or(0),
        targets,
        series: parse_series(doc, targets, what)?,
    })
}

/// Parses a `BENCH_scan.json` (`vp-bench-scan/v1`) document.
pub fn parse_bench_scan(text: &str, what: &str) -> Result<BenchScanDoc, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("{what}: invalid JSON: {e}"))?;
    parse_scan_doc(&doc, what)
}

/// Parses a `vp-bench-baseline/v1` trajectory document.
pub fn parse_baseline(text: &str, what: &str) -> Result<BenchBaseline, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("{what}: invalid JSON: {e}"))?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("vp-bench-baseline/v1") => {}
        other => return Err(format!("{what}: unexpected schema {other:?}")),
    }
    let tolerance_permille = doc
        .get("tolerance_permille")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{what}: missing tolerance_permille"))?;
    let Some(runs) = doc.get("runs").and_then(Value::as_array) else {
        return Err(format!("{what}: missing runs array"));
    };
    let runs = runs
        .iter()
        .enumerate()
        .map(|(i, r)| parse_scan_doc(r, &format!("{what}: runs[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    if runs.is_empty() {
        return Err(format!("{what}: baseline has no runs"));
    }
    Ok(BenchBaseline {
        tolerance_permille,
        runs,
    })
}

/// The verdict for one (targets, shards, threaded) series entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardVerdict {
    pub targets: u64,
    pub shards: u64,
    pub threaded: bool,
    pub current_min_ns: u64,
    /// Best (lowest) min over the baseline trajectory; `None` if the
    /// baseline has no entry for this (targets, shards, threaded) key.
    pub baseline_best_ns: Option<u64>,
    /// `current * 1000 / baseline_best`; 1000 = exactly baseline.
    pub ratio_permille: Option<u64>,
    pub regressed: bool,
}

/// The overall check-bench verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchVerdict {
    pub tolerance_permille: u64,
    /// Host speed factor the allowance was scaled by (1000 = the host
    /// the baselines were recorded on).
    pub host_factor_permille: u64,
    pub shards: Vec<ShardVerdict>,
}

impl BenchVerdict {
    /// True if any shard count regressed.
    pub fn regressed(&self) -> bool {
        self.shards.iter().any(|s| s.regressed)
    }

    /// One report line per shard count, for CLI output.
    pub fn report_lines(&self) -> Vec<String> {
        self.shards
            .iter()
            .map(|s| {
                let mode = if s.threaded { " threaded" } else { "" };
                match (s.baseline_best_ns, s.ratio_permille) {
                    (Some(best), Some(ratio)) => format!(
                        "targets={targets} K={shards}{mode}: min {cur:.1}ms vs baseline best \
                         {best:.1}ms (ratio {ratio} permille, limit {limit}) — {verdict}",
                        targets = s.targets,
                        shards = s.shards,
                        cur = s.current_min_ns as f64 / 1e6,
                        best = best as f64 / 1e6,
                        limit =
                            (1000 + self.tolerance_permille) * self.host_factor_permille / 1000,
                        verdict = if s.regressed { "REGRESSED" } else { "ok" },
                    ),
                    _ => format!(
                        "targets={} K={}{mode}: no baseline entry — skipped \
                         (commit a new baseline run)",
                        s.targets, s.shards
                    ),
                }
            })
            .collect()
    }
}

/// Applies the noise-aware min-of-reps rule: each current (targets,
/// shards, threaded) entry is compared against the best min across the
/// whole baseline trajectory **at the same key** — a 100k-block min must
/// never be judged against a 15k-block baseline, and a threaded series
/// must never be judged against the serial executor's (or vice versa).
/// Keys absent from the baseline are reported but never regress (a new
/// scale, K, or execution mode needs a committed baseline first).
pub fn check_bench(current: &BenchScanDoc, baseline: &BenchBaseline) -> BenchVerdict {
    check_bench_scaled(current, baseline, 1000)
}

/// [`check_bench`] with a host speed factor (permille, 1000 = the host
/// the committed baselines were recorded on). A CI box measured ~1.3×
/// slower than the baseline host passes `host_factor_permille = 1300`
/// and its allowance scales accordingly:
/// `current * 1_000_000 > best * (1000 + tolerance) * host_factor`.
/// This keeps the committed baselines portable instead of silently
/// re-recording them per machine. Factors below 1000 tighten the gate
/// (a faster host should also be held to its speed).
pub fn check_bench_scaled(
    current: &BenchScanDoc,
    baseline: &BenchBaseline,
    host_factor_permille: u64,
) -> BenchVerdict {
    let shards = current
        .series
        .iter()
        .map(|cur| {
            let best = baseline
                .runs
                .iter()
                .flat_map(|run| run.series.iter())
                .filter(|b| {
                    b.shards == cur.shards
                        && b.targets == cur.targets
                        && b.threaded == cur.threaded
                })
                .map(|b| b.min_ns)
                .min();
            let ratio = best.map(|b| cur.min_ns.saturating_mul(1000) / b.max(1));
            let regressed = match best {
                Some(b) => {
                    u128::from(cur.min_ns) * 1_000_000
                        > u128::from(b)
                            * u128::from(1000 + baseline.tolerance_permille)
                            * u128::from(host_factor_permille)
                }
                None => false,
            };
            ShardVerdict {
                targets: cur.targets,
                shards: cur.shards,
                threaded: cur.threaded,
                current_min_ns: cur.min_ns,
                baseline_best_ns: best,
                ratio_permille: ratio,
                regressed,
            }
        })
        .collect();
    BenchVerdict {
        tolerance_permille: baseline.tolerance_permille,
        host_factor_permille,
        shards,
    }
}

fn run_value(doc: &BenchScanDoc) -> Value {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert(
        "schema".to_owned(),
        Value::Str("vp-bench-scan/v1".to_owned()),
    );
    obj.insert("run".to_owned(), Value::U64(doc.run));
    obj.insert("targets".to_owned(), Value::U64(doc.targets));
    obj.insert(
        "series".to_owned(),
        Value::Array(
            doc.series
                .iter()
                .map(|r| {
                    let mut e = std::collections::BTreeMap::new();
                    e.insert("targets".to_owned(), Value::U64(r.targets));
                    e.insert("shards".to_owned(), Value::U64(r.shards));
                    e.insert("threaded".to_owned(), Value::Bool(r.threaded));
                    e.insert("reps".to_owned(), Value::U64(r.reps));
                    e.insert("min_ns".to_owned(), Value::U64(r.min_ns));
                    e.insert("median_ns".to_owned(), Value::U64(r.median_ns));
                    e.insert("p90_ns".to_owned(), Value::U64(r.p90_ns));
                    e.insert("max_ns".to_owned(), Value::U64(r.max_ns));
                    Value::Object(e)
                })
                .collect(),
        ),
    );
    Value::Object(obj)
}

/// Renders a baseline, optionally with `current` appended to the
/// trajectory, as the canonical `vp-bench-baseline/v1` document
/// (`vp-monitor check-bench --append` uses this to extend the committed
/// baseline after an accepted run).
pub fn build_baseline_doc(baseline: &BenchBaseline, append: Option<&BenchScanDoc>) -> Value {
    let mut doc = std::collections::BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-bench-baseline/v1".to_owned()),
    );
    doc.insert(
        "tolerance_permille".to_owned(),
        Value::U64(baseline.tolerance_permille),
    );
    doc.insert(
        "runs".to_owned(),
        Value::Array(
            baseline
                .runs
                .iter()
                .chain(append)
                .map(run_value)
                .collect(),
        ),
    );
    Value::Object(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(run_no: u64, mins: &[(u64, u64)]) -> BenchScanDoc {
        run_at(run_no, &mins.iter().map(|&(s, m)| (15000, s, m)).collect::<Vec<_>>())
    }

    fn run_at(run_no: u64, mins: &[(u64, u64, u64)]) -> BenchScanDoc {
        BenchScanDoc {
            run: run_no,
            targets: mins.first().map_or(15000, |&(t, _, _)| t),
            series: mins
                .iter()
                .map(|&(targets, shards, min_ns)| BenchRun {
                    targets,
                    shards,
                    threaded: false,
                    reps: 9,
                    min_ns,
                    median_ns: min_ns + 10,
                    p90_ns: min_ns + 20,
                    max_ns: min_ns + 30,
                })
                .collect(),
        }
    }

    fn mark_threaded(mut doc: BenchScanDoc) -> BenchScanDoc {
        for r in &mut doc.series {
            r.threaded = true;
        }
        doc
    }

    fn baseline(tolerance: u64, runs: Vec<BenchScanDoc>) -> BenchBaseline {
        BenchBaseline {
            tolerance_permille: tolerance,
            runs,
        }
    }

    #[test]
    fn within_tolerance_passes() {
        let base = baseline(500, vec![run(1, &[(1, 1000), (2, 600)])]);
        let verdict = check_bench(&run(2, &[(1, 1400), (2, 800)]), &base);
        assert!(!verdict.regressed(), "{:?}", verdict.shards);
        assert_eq!(verdict.shards[0].ratio_permille, Some(1400));
    }

    #[test]
    fn beyond_tolerance_regresses() {
        let base = baseline(500, vec![run(1, &[(1, 1000)])]);
        let verdict = check_bench(&run(2, &[(1, 1501)]), &base);
        assert!(verdict.regressed());
        assert!(verdict.report_lines()[0].contains("REGRESSED"));
        // Exactly at the limit still passes (strict inequality).
        assert!(!check_bench(&run(2, &[(1, 1500)]), &base).regressed());
    }

    #[test]
    fn trajectory_best_is_min_over_all_runs() {
        // Run 2 was lucky (fast); run 3 slower. Best = 800.
        let base = baseline(
            500,
            vec![run(1, &[(1, 1000)]), run(2, &[(1, 800)]), run(3, &[(1, 1100)])],
        );
        let verdict = check_bench(&run(4, &[(1, 1201)]), &base);
        assert!(verdict.regressed()); // 1201 > 800 * 1.5
        assert_eq!(verdict.shards[0].baseline_best_ns, Some(800));
    }

    #[test]
    fn unknown_shard_count_never_regresses() {
        let base = baseline(500, vec![run(1, &[(1, 1000)])]);
        let verdict = check_bench(&run(2, &[(1, 1000), (16, 99999)]), &base);
        assert!(!verdict.regressed());
        assert!(verdict.report_lines()[1].contains("no baseline entry"));
    }

    #[test]
    fn scales_are_gated_independently() {
        // 100k entries compare only against 100k baselines: a slow 100k
        // min must not hide behind a fast 15k baseline, and a new scale
        // never regresses before its baseline is committed.
        let base = baseline(
            500,
            vec![run_at(1, &[(15000, 1, 1000), (100_000, 1, 8000)])],
        );
        let slow_big = run_at(2, &[(15000, 1, 1100), (100_000, 1, 12_001)]);
        let verdict = check_bench(&slow_big, &base);
        assert!(verdict.regressed());
        assert!(!verdict.shards[0].regressed, "15k within tolerance");
        assert!(verdict.shards[1].regressed, "100k beyond tolerance");
        assert_eq!(verdict.shards[1].baseline_best_ns, Some(8000));
        assert!(verdict.report_lines()[1].contains("targets=100000"));

        let new_scale = run_at(3, &[(1_000_000, 1, 999_999_999)]);
        assert!(!check_bench(&new_scale, &base).regressed());
    }

    #[test]
    fn threaded_series_gate_independently_of_serial() {
        // A threaded K=8 entry must not be judged against the serial
        // K=8 baseline (the threaded series has its own cost profile),
        // and before a threaded baseline is committed it never regresses.
        let base = baseline(500, vec![run(1, &[(8, 1000)])]);
        let slow_threaded = mark_threaded(run(2, &[(8, 99_999)]));
        let verdict = check_bench(&slow_threaded, &base);
        assert!(!verdict.regressed());
        assert!(verdict.report_lines()[0].contains("K=8 threaded"));
        assert!(verdict.report_lines()[0].contains("no baseline entry"));

        // Once a threaded baseline exists, the threaded series gates —
        // and the serial series still compares against serial only.
        let base2 = baseline(
            500,
            vec![run(1, &[(8, 1000)]), mark_threaded(run(2, &[(8, 700)]))],
        );
        let mut mixed = run(3, &[(8, 1400), (8, 1051)]);
        mixed.series[1].threaded = true;
        let verdict = check_bench(&mixed, &base2);
        assert!(!verdict.shards[0].regressed, "serial 1400 vs 1000*1.5");
        assert!(verdict.shards[1].regressed, "threaded 1051 > 700*1.5");
        assert_eq!(verdict.shards[1].baseline_best_ns, Some(700));
    }

    #[test]
    fn threaded_flag_roundtrips_and_defaults_false() {
        let text = r#"{
            "schema": "vp-bench-scan/v1", "run": 1, "targets": 15000,
            "series": [
                {"max_ns": 5, "median_ns": 4, "min_ns": 3, "p90_ns": 5,
                 "reps": 9, "shards": 1},
                {"max_ns": 5, "median_ns": 4, "min_ns": 2, "p90_ns": 5,
                 "reps": 9, "shards": 8, "threaded": true}
            ]
        }"#;
        let doc = parse_bench_scan(text, "test").unwrap();
        assert!(!doc.series[0].threaded, "absent parses as serial");
        assert!(doc.series[1].threaded);
        let base = baseline(500, vec![doc.clone()]);
        let rendered = serde_json::to_string(&build_baseline_doc(&base, None)).unwrap();
        let back = parse_baseline(&rendered, "test").unwrap();
        assert_eq!(back.runs[0], doc);
    }

    #[test]
    fn host_factor_scales_the_allowance() {
        // Baseline 1000ns, tolerance 500‰ → serial limit 1500ns. A
        // current min of 1800ns regresses on the baseline host but is
        // within allowance on a host vouched 1.3× slower (limit 1950ns).
        let base = baseline(500, vec![run(1, &[(1, 1000)])]);
        let cur = run(2, &[(1, 1800)]);
        assert!(check_bench(&cur, &base).regressed());
        let scaled = check_bench_scaled(&cur, &base, 1300);
        assert!(!scaled.regressed(), "{:?}", scaled.shards);
        assert!(scaled.report_lines()[0].contains("limit 1950"));
        // Strict inequality at the scaled limit: 1950 passes, 1951 fails.
        assert!(!check_bench_scaled(&run(2, &[(1, 1950)]), &base, 1300).regressed());
        assert!(check_bench_scaled(&run(2, &[(1, 1951)]), &base, 1300).regressed());
        // A factor below 1000 tightens the gate for a faster host.
        assert!(check_bench_scaled(&run(2, &[(1, 1400)]), &base, 900).regressed());
    }

    #[test]
    fn entry_targets_default_to_doc_level() {
        // Pre-multi-scale documents carry targets only at the document
        // level; their entries must still match same-scale baselines.
        let text = r#"{
            "schema": "vp-bench-scan/v1", "run": 1, "targets": 15000,
            "series": [{"max_ns": 5, "median_ns": 4, "min_ns": 3,
                        "p90_ns": 5, "reps": 9, "shards": 1}]
        }"#;
        let doc = parse_bench_scan(text, "test").unwrap();
        assert_eq!(doc.series[0].targets, 15000);
        let base = baseline(500, vec![doc]);
        let verdict = check_bench(&run(2, &[(1, 4)]), &base);
        assert_eq!(verdict.shards[0].baseline_best_ns, Some(3));
    }

    #[test]
    fn parse_roundtrip_through_baseline_doc() {
        let base = baseline(500, vec![run(1, &[(1, 1000), (2, 600)])]);
        let appended = run(2, &[(1, 900), (2, 550)]);
        let doc = build_baseline_doc(&base, Some(&appended));
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let back = parse_baseline(&text, "test").unwrap();
        assert_eq!(back.runs.len(), 2);
        assert_eq!(back.runs[1], appended);
        assert_eq!(back.tolerance_permille, 500);
    }

    #[test]
    fn real_bench_scan_document_parses() {
        // Shape of the committed BENCH_scan.json (pre-`run` documents get
        // run 0).
        let text = r#"{
            "benchmark": "run_scan", "schema": "vp-bench-scan/v1",
            "targets": 15000,
            "series": [{"max_ns": 5, "median_ns": 4, "min_ns": 3,
                        "p90_ns": 5, "reps": 5, "shards": 1}]
        }"#;
        let doc = parse_bench_scan(text, "test").unwrap();
        assert_eq!(doc.run, 0);
        assert_eq!(doc.series[0].min_ns, 3);
        assert!(parse_bench_scan("{}", "test").is_err());
        assert!(parse_baseline(r#"{"schema":"vp-bench-baseline/v1","tolerance_permille":500,"runs":[]}"#, "t").is_err());
    }
}
