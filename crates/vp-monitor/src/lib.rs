//! # vp-monitor — the consumer side of the observability pipeline
//!
//! PR 3's `vp-obs` layer made every experiment *emit* artifacts: metric
//! registries, sim-time phase spans, and `vp-obs-report/v1` run reports.
//! This crate closes the loop by *watching* them. It is the reproduction
//! of the paper's headline operational claim (§4.4/Fig. 9): Verfploeter is
//! cheap enough to re-run continuously, so catchment drift — routing
//! changes, site flips, load-share skew, coverage loss — becomes an alert
//! stream an operator can act on, not a post-hoc analysis.
//!
//! Four layers (DESIGN.md §10):
//!
//! 1. **Ingest** ([`ingest`]) — loads time-ordered sequences of catchment
//!    snapshots (the fig9 stability rounds are the canonical source, via
//!    `fig9_stability --snapshots <dir>`), the optional block→origin-AS
//!    sidecar, and `vp-obs-report/v1` documents for sim-time scan
//!    durations.
//! 2. **Diff engine** ([`diff`]) — per-/24 catchment flips, per-AS flip
//!    aggregation, site load-share deltas, and coverage changes between
//!    consecutive rounds; window aggregates fold through
//!    [`diff::DriftSummary::merge`], which obeys the same merge algebra as
//!    `SimStats`/`Registry` (associative, commutative, empty identity —
//!    and lint rule d3 holds this crate to the explicit-marker contract).
//! 3. **Alert evaluator** ([`alert`]) — deterministic threshold +
//!    hysteresis rules emitting canonical `vp-monitor-alert/v1` JSON.
//!    No wall clock anywhere: rounds are the only notion of time, so the
//!    same input sequence always yields byte-identical alert documents.
//! 4. **Bench-regression checker** ([`bench`]) — compares the current
//!    `BENCH_scan.json` against the committed baseline trajectory
//!    (`results/monitor/bench_baseline.json`) with a noise-aware
//!    min-of-reps rule; `scripts/check.sh` runs it as a gate.
//!
//! 5. **Streaming tracker** ([`stream`]) — [`stream::DriftTracker`] folds
//!    rounds one at a time and is proven by proptest to match the batch
//!    pipeline byte-for-byte; it backs `vp-monitor watch --follow` and
//!    the `vp-daemon` status/scrape surfaces (`vp-daemon-status/v1` plus
//!    Prometheus text), with rolling signal windows in O(window) memory.
//!
//! 6. **Flight-recorder profiler** ([`profile`]) — parses
//!    `vp-obs-flight/v1` documents from the scan engine's flight recorder
//!    and renders the attribution report (`vp-monitor profile`): per-phase
//!    self/total times, per-shard compute imbalance in permille, and a
//!    slowest-shard critical-path estimate.
//!
//! The `vp-monitor` binary exposes all of it: `diff`, `watch`,
//! `check-bench`, `validate`, `profile`.

#![deny(unused_must_use)]

pub mod alert;
pub mod bench;
pub mod diff;
pub mod ingest;
pub mod pipeline;
pub mod profile;
pub mod schema;
pub mod stream;

pub use alert::{Alert, AlertConfig, Evaluator};
pub use bench::{check_bench, BenchRun, BenchVerdict};
pub use diff::{diff_rounds, diff_sequence, DriftSummary, Origins, RoundDiff};
pub use ingest::{load_obs_report, load_rounds_dir, ObsReportDoc, ScanSummary};
pub use pipeline::{run_diff_pipeline, DiffOutput};
pub use profile::{parse_flight_doc, profile_channel, render_report, ChannelProfile, PhaseRow};
pub use stream::{build_scrape, build_status_doc, DaemonMeta, DriftTracker, StreamStep};
