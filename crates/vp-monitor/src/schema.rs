//! Schema snapshots and the mini JSON-schema validator.
//!
//! The validator started life in `vp_experiments::obs` guarding the
//! `vp-obs-report/v1` snapshot; it lives here now because the monitor
//! validates *four* document families — obs reports plus its own drift,
//! alert and bench-baseline documents — and `vp-experiments` re-exports it
//! for its schema test. The checked-in `schema/*.schema.json` snapshots
//! are embedded at compile time, so `vp-monitor validate` needs no file
//! lookup at run time and every consumer pins the same bytes.
//!
//! Supported JSON-Schema subset: `type` (a name or an array of names),
//! `required`, `properties`, `additionalProperties` (a schema, or
//! `false`), `items`, `enum` and `minimum`.

use serde_json::Value;

/// Schema snapshot for `vp-obs-report/v1` (the vp-experiments run
/// reports).
pub const OBS_REPORT_SCHEMA: &str = include_str!("../schema/obs_report.schema.json");
/// Schema snapshot for `vp-monitor-drift/v1`.
pub const DRIFT_SCHEMA: &str = include_str!("../schema/drift.schema.json");
/// Schema snapshot for `vp-monitor-alert/v1`.
pub const ALERT_SCHEMA: &str = include_str!("../schema/alert.schema.json");
/// Schema snapshot for `vp-bench-baseline/v1` trajectories.
pub const BENCH_BASELINE_SCHEMA: &str = include_str!("../schema/bench_baseline.schema.json");
/// Schema snapshot for `vp-obs-flight/v1` flight-recorder documents.
pub const FLIGHT_SCHEMA: &str = include_str!("../schema/flight.schema.json");
/// Schema snapshot for `vp-daemon-status/v1` daemon status documents.
pub const DAEMON_STATUS_SCHEMA: &str = include_str!("../schema/daemon_status.schema.json");

/// Picks the embedded schema for a document by its `schema` tag.
pub fn schema_for(tag: &str) -> Option<&'static str> {
    match tag {
        "vp-obs-report/v1" => Some(OBS_REPORT_SCHEMA),
        "vp-monitor-drift/v1" => Some(DRIFT_SCHEMA),
        "vp-monitor-alert/v1" => Some(ALERT_SCHEMA),
        "vp-bench-baseline/v1" => Some(BENCH_BASELINE_SCHEMA),
        "vp-obs-flight/v1" => Some(FLIGHT_SCHEMA),
        "vp-daemon-status/v1" => Some(DAEMON_STATUS_SCHEMA),
        _ => None,
    }
}

/// Validates a document against the embedded schema matching its
/// `schema` tag. Returns one message per violation.
pub fn validate_tagged(doc: &Value) -> Vec<String> {
    let Some(tag) = doc.get("schema").and_then(Value::as_str) else {
        return vec!["$: document has no schema tag".to_owned()];
    };
    let Some(schema_text) = schema_for(tag) else {
        return vec![format!("$: unknown schema tag {tag:?}")];
    };
    match serde_json::from_str(schema_text) {
        Ok(schema) => validate_schema(doc, &schema),
        Err(e) => vec![format!("$: embedded schema for {tag:?} unreadable: {e}")],
    }
}

/// Validates `value` against the supported JSON-Schema subset. Returns
/// one message per violation; an empty vector means the document
/// conforms.
pub fn validate_schema(value: &Value, schema: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    check(value, schema, "$", &mut errors);
    errors
}

fn type_name(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::I64(_) | Value::U64(_) => "integer",
        Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// JSON Schema semantics: every integer is also a number.
fn type_matches(got: &'static str, want: &str) -> bool {
    got == want || (want == "number" && got == "integer")
}

fn check(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    let Value::Object(schema) = schema else {
        errors.push(format!("{path}: schema node is not an object"));
        return;
    };

    match schema.get("type") {
        Some(Value::Str(want)) => {
            let got = type_name(value);
            if !type_matches(got, want) {
                errors.push(format!("{path}: expected {want}, got {got}"));
                return;
            }
        }
        Some(Value::Array(options)) => {
            let got = type_name(value);
            let ok = options
                .iter()
                .filter_map(Value::as_str)
                .any(|want| type_matches(got, want));
            if !ok {
                errors.push(format!("{path}: type {got} not among allowed types"));
                return;
            }
        }
        _ => {}
    }

    if let Some(Value::Array(allowed)) = schema.get("enum") {
        if !allowed.iter().any(|a| a == value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }

    if let Some(min) = schema.get("minimum").and_then(Value::as_i64) {
        if let Some(v) = value.as_i64() {
            if v < min {
                errors.push(format!("{path}: {v} below minimum {min}"));
            }
        }
    }

    if let Value::Object(obj) = value {
        if let Some(Value::Array(required)) = schema.get("required") {
            for key in required {
                if let Value::Str(key) = key {
                    if !obj.contains_key(key) {
                        errors.push(format!("{path}: missing required key {key:?}"));
                    }
                }
            }
        }
        let props = match schema.get("properties") {
            Some(Value::Object(p)) => Some(p),
            _ => None,
        };
        for (key, child) in obj {
            let child_path = format!("{path}.{key}");
            if let Some(prop_schema) = props.and_then(|p| p.get(key)) {
                check(child, prop_schema, &child_path, errors);
            } else {
                match schema.get("additionalProperties") {
                    Some(Value::Bool(false)) => {
                        errors.push(format!("{path}: unexpected key {key:?}"));
                    }
                    Some(extra @ Value::Object(_)) => check(child, extra, &child_path, errors),
                    _ => {}
                }
            }
        }
    }

    if let (Value::Array(items), Some(item_schema)) = (value, schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            check(item, item_schema, &format!("{path}[{i}]"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{build_alert_doc, AlertConfig};
    use crate::pipeline::build_drift_doc;

    #[test]
    fn embedded_schemas_parse() {
        for (tag, text) in [
            ("vp-obs-report/v1", OBS_REPORT_SCHEMA),
            ("vp-monitor-drift/v1", DRIFT_SCHEMA),
            ("vp-monitor-alert/v1", ALERT_SCHEMA),
            ("vp-bench-baseline/v1", BENCH_BASELINE_SCHEMA),
            ("vp-obs-flight/v1", FLIGHT_SCHEMA),
            ("vp-daemon-status/v1", DAEMON_STATUS_SCHEMA),
        ] {
            assert!(
                serde_json::from_str::<Value>(text).is_ok(),
                "schema for {tag} does not parse"
            );
            assert!(schema_for(tag).is_some());
        }
        assert!(schema_for("nope/v9").is_none());
    }

    #[test]
    fn validator_flags_missing_and_mistyped_fields() {
        let schema: Value = serde_json::from_str(
            r#"{"type":"object","required":["a"],"properties":{"a":{"type":"integer","minimum":0},"b":{"type":"array","items":{"type":"string"}}},"additionalProperties":false}"#,
        )
        .unwrap();
        let good: Value = serde_json::from_str(r#"{"a":3,"b":["x"]}"#).unwrap();
        assert!(validate_schema(&good, &schema).is_empty());

        let missing: Value = serde_json::from_str(r#"{"b":[]}"#).unwrap();
        assert_eq!(validate_schema(&missing, &schema).len(), 1);

        let bad_type: Value = serde_json::from_str(r#"{"a":"no"}"#).unwrap();
        assert!(!validate_schema(&bad_type, &schema).is_empty());

        let extra: Value = serde_json::from_str(r#"{"a":1,"z":true}"#).unwrap();
        assert!(validate_schema(&extra, &schema)
            .iter()
            .any(|e| e.contains("unexpected key")));

        let bad_item: Value = serde_json::from_str(r#"{"a":1,"b":[4]}"#).unwrap();
        assert!(!validate_schema(&bad_item, &schema).is_empty());
    }

    #[test]
    fn type_arrays_allow_nullable_fields() {
        let schema: Value =
            serde_json::from_str(r#"{"type":["integer","null"],"minimum":1}"#).unwrap();
        assert!(validate_schema(&Value::Null, &schema).is_empty());
        assert!(validate_schema(&Value::U64(3), &schema).is_empty());
        assert!(!validate_schema(&Value::U64(0), &schema).is_empty());
        assert!(!validate_schema(&Value::Str("x".to_owned()), &schema).is_empty());
    }

    #[test]
    fn pipeline_documents_conform_to_their_schemas() {
        // An alert doc with one cleared and one active alert.
        let alerts = vec![
            crate::alert::Alert {
                rule: "flip-rate".to_owned(),
                fired_round: 2,
                cleared_round: Some(5),
                peak_value: 30,
                peak_round: 3,
                threshold: 5,
            },
            crate::alert::Alert {
                rule: "load-skew".to_owned(),
                fired_round: 7,
                cleared_round: None,
                peak_value: 80,
                peak_round: 7,
                threshold: 50,
            },
        ];
        let doc = build_alert_doc("t", 9, &AlertConfig::default(), &alerts);
        assert_eq!(validate_tagged(&doc), Vec::<String>::new());

        let drift = build_drift_doc("t", &[], &crate::diff::DriftSummary::default());
        assert_eq!(validate_tagged(&drift), Vec::<String>::new());

        let untagged: Value = serde_json::from_str("{}").unwrap();
        assert!(!validate_tagged(&untagged).is_empty());
    }
}
