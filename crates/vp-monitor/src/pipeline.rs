//! The end-to-end diff pipeline: rounds (+ optional origins and obs
//! report) → per-round diffs → drift summary + alert evaluation →
//! canonical JSON documents.
//!
//! Both the `vp-monitor diff` CLI path and the golden integration tests
//! call [`run_diff_pipeline`], so the bytes the tests pin are exactly the
//! bytes the tool writes.

use std::collections::BTreeMap;

use serde_json::Value;
use verfploeter::catchment::CatchmentMap;

use crate::alert::{build_alert_doc, Alert, AlertConfig, Evaluator};
use crate::diff::{diff_sequence, DriftSummary, Origins, RoundDiff};

/// Everything one pipeline run produces.
#[derive(Debug, Clone)]
pub struct DiffOutput {
    /// Per-round diffs, in round order.
    pub diffs: Vec<RoundDiff>,
    /// Window aggregate of all diffs.
    pub summary: DriftSummary,
    /// Fired alerts (cleared and still-active).
    pub alerts: Vec<Alert>,
    /// Fired/cleared transition lines, for `watch`-style display.
    pub transitions: Vec<String>,
    /// Canonical `vp-monitor-drift/v1` document.
    pub drift_doc: Value,
    /// Canonical `vp-monitor-alert/v1` document.
    pub alert_doc: Value,
}

pub(crate) fn u64_map_value<K: ToString>(map: &BTreeMap<K, u64>) -> Value {
    Value::Object(
        map.iter()
            .map(|(k, v)| (k.to_string(), Value::U64(*v)))
            .collect(),
    )
}

pub(crate) fn diff_value(d: &RoundDiff) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("round".to_owned(), Value::U64(u64::from(d.round)));
    obj.insert("prev".to_owned(), Value::Str(d.prev_name.clone()));
    obj.insert("cur".to_owned(), Value::Str(d.cur_name.clone()));
    obj.insert("stable".to_owned(), Value::U64(d.stable));
    obj.insert("flipped".to_owned(), Value::U64(d.flipped));
    obj.insert("to_nr".to_owned(), Value::U64(d.to_nr));
    obj.insert("from_nr".to_owned(), Value::U64(d.from_nr));
    obj.insert("prev_blocks".to_owned(), Value::U64(d.prev_blocks));
    obj.insert("cur_blocks".to_owned(), Value::U64(d.cur_blocks));
    obj.insert(
        "coverage_delta_permille".to_owned(),
        Value::I64(d.coverage_delta_permille),
    );
    obj.insert(
        "flip_rate_permille".to_owned(),
        Value::U64(d.flip_rate_permille),
    );
    obj.insert(
        "site_shares_permille".to_owned(),
        u64_map_value(&d.site_shares_permille),
    );
    obj.insert(
        "max_share_delta_permille".to_owned(),
        Value::U64(d.max_share_delta_permille),
    );
    obj.insert("flips_by_as".to_owned(), u64_map_value(&d.flips_by_as));
    Value::Object(obj)
}

pub(crate) fn summary_value(s: &DriftSummary) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("rounds".to_owned(), Value::U64(s.rounds));
    obj.insert("stable".to_owned(), Value::U64(s.stable));
    obj.insert("flipped".to_owned(), Value::U64(s.flipped));
    obj.insert("to_nr".to_owned(), Value::U64(s.to_nr));
    obj.insert("from_nr".to_owned(), Value::U64(s.from_nr));
    obj.insert("max_flipped".to_owned(), Value::U64(s.max_flipped));
    obj.insert(
        "max_flip_rate_permille".to_owned(),
        Value::U64(s.max_flip_rate_permille),
    );
    obj.insert(
        "max_coverage_drop_permille".to_owned(),
        Value::U64(s.max_coverage_drop_permille),
    );
    obj.insert(
        "max_share_delta_permille".to_owned(),
        Value::U64(s.max_share_delta_permille),
    );
    obj.insert("flips_by_as".to_owned(), u64_map_value(&s.flips_by_as));
    Value::Object(obj)
}

/// Renders diffs + summary as the canonical `vp-monitor-drift/v1`
/// document.
pub fn build_drift_doc(source: &str, diffs: &[RoundDiff], summary: &DriftSummary) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-monitor-drift/v1".to_owned()),
    );
    doc.insert("source".to_owned(), Value::Str(source.to_owned()));
    doc.insert(
        "rounds".to_owned(),
        Value::Array(diffs.iter().map(diff_value).collect()),
    );
    doc.insert("summary".to_owned(), summary_value(summary));
    Value::Object(doc)
}

/// Runs the whole monitoring pipeline over a time-ordered round sequence.
///
/// * `source` names the sequence in the output documents (e.g.
///   `"fig9_stability/tiny"`).
/// * `origins` enables per-AS flip attribution.
/// * `durations` maps 1-based round indices (the index of the *current*
///   round of each transition, matching [`RoundDiff::round`]) to sim-time
///   scan spans; it feeds the `scan-duration` rule. Typically built from
///   an obs report via
///   [`ObsReportDoc::round_durations`](crate::ingest::ObsReportDoc::round_durations).
pub fn run_diff_pipeline(
    source: &str,
    rounds: &[CatchmentMap],
    origins: Option<&Origins>,
    durations: Option<&BTreeMap<u32, u64>>,
    config: &AlertConfig,
) -> DiffOutput {
    let diffs = diff_sequence(rounds, origins);
    let summary = DriftSummary::accumulate(&diffs);

    let mut evaluator = Evaluator::new(config.clone());
    let mut transitions = Vec::new();
    for d in &diffs {
        let dur = durations.and_then(|m| m.get(&d.round).copied());
        transitions.extend(evaluator.observe(d, dur));
    }
    let rounds_seen = evaluator.rounds_seen();
    let alerts = evaluator.finish();

    let drift_doc = build_drift_doc(source, &diffs, &summary);
    let alert_doc = build_alert_doc(source, rounds_seen, config, &alerts);
    DiffOutput {
        diffs,
        summary,
        alerts,
        transitions,
        drift_doc,
        alert_doc,
    }
}

impl DiffOutput {
    /// One-paragraph human summary for the CLI.
    pub fn summary_text(&self) -> String {
        let s = &self.summary;
        let active = self
            .alerts
            .iter()
            .filter(|a| a.cleared_round.is_none())
            .count();
        format!(
            "{rounds} round transitions: {stable} stable, {flipped} flipped, \
             {to_nr} to-NR, {from_nr} from-NR; worst round {max_flipped} flips \
             ({max_rate} permille); {total} alerts ({active} active)",
            rounds = s.rounds,
            stable = s.stable,
            flipped = s.flipped,
            to_nr = s.to_nr,
            from_nr = s.from_nr,
            max_flipped = s.max_flipped,
            max_rate = s.max_flip_rate_permille,
            total = self.alerts.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_bgp::SiteId;
    use vp_net::Block24;

    fn map(name: &str, pairs: &[(u32, u8)]) -> CatchmentMap {
        CatchmentMap::from_pairs(name, pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))))
    }

    fn drifting_rounds() -> Vec<CatchmentMap> {
        // 4 blocks; one flips every round from round 2 on -> sustained
        // 333 permille flip rate fires the default flip-rate rule.
        vec![
            map("r0", &[(1, 0), (2, 0), (3, 1), (4, 1)]),
            map("r1", &[(1, 0), (2, 0), (3, 1), (4, 1)]),
            map("r2", &[(1, 1), (2, 0), (3, 1)]),
            map("r3", &[(1, 0), (2, 0), (3, 1)]),
            map("r4", &[(1, 1), (2, 0), (3, 1)]),
        ]
    }

    #[test]
    fn pipeline_is_deterministic() {
        let rounds = drifting_rounds();
        let a = run_diff_pipeline("t", &rounds, None, None, &AlertConfig::default());
        let b = run_diff_pipeline("t", &rounds, None, None, &AlertConfig::default());
        assert_eq!(
            serde_json::to_string_pretty(&a.drift_doc).ok(),
            serde_json::to_string_pretty(&b.drift_doc).ok()
        );
        assert_eq!(
            serde_json::to_string_pretty(&a.alert_doc).ok(),
            serde_json::to_string_pretty(&b.alert_doc).ok()
        );
    }

    #[test]
    fn pipeline_fires_on_sustained_drift() {
        let rounds = drifting_rounds();
        let out = run_diff_pipeline("t", &rounds, None, None, &AlertConfig::default());
        assert_eq!(out.diffs.len(), 4);
        assert!(
            out.alerts.iter().any(|a| a.rule == "flip-rate"),
            "{:?}",
            out.alerts
        );
        assert!(!out.transitions.is_empty());
        assert!(out.summary_text().contains("4 round transitions"));
        // Doc shape sanity.
        assert_eq!(
            out.drift_doc.get("schema").and_then(Value::as_str),
            Some("vp-monitor-drift/v1")
        );
        assert_eq!(
            out.alert_doc.get("schema").and_then(Value::as_str),
            Some("vp-monitor-alert/v1")
        );
        assert_eq!(
            out.drift_doc
                .get("rounds")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(4)
        );
    }

    #[test]
    fn stable_sequence_raises_nothing() {
        let r = map("r", &[(1, 0), (2, 1)]);
        let rounds = vec![r.clone(), r.clone(), r];
        let out = run_diff_pipeline("t", &rounds, None, None, &AlertConfig::default());
        assert!(out.alerts.is_empty());
        assert!(out.transitions.is_empty());
        assert_eq!(out.summary.flipped, 0);
    }
}
