//! The streaming half of the monitor: fold rounds one at a time.
//!
//! [`run_diff_pipeline`](crate::pipeline::run_diff_pipeline) wants the
//! whole round sequence in hand; a daemon watching a live scan loop never
//! has that. [`DriftTracker`] ingests one catchment map at a time and
//! maintains exactly the batch pipeline's outputs incrementally — the
//! per-round diffs, the merged [`DriftSummary`], the hysteresis alert
//! state, and rolling fixed-width windows of the alert signals (flip
//! rate, share skew, coverage) backed by [`RollingWindow`]. The
//! streaming-equals-batch contract is proven by proptest: any round
//! sequence fed map-by-map yields byte-identical drift and alert
//! documents to one `run_diff_pipeline` call, and splitting the stream at
//! any point ([`DriftTracker::with_start_round`]) concatenates and merges
//! back to the whole-stream result.
//!
//! The same module renders the daemon's two publication surfaces, so the
//! `vp-daemon` binary, `vp-monitor watch --follow`, and the golden tests
//! all share one code path:
//!
//! * [`build_status_doc`] — the canonical `vp-daemon-status/v1` JSON
//!   document (current round, rolling windows, live alert log, last
//!   flight-recorder profile digest), schema-validated like every other
//!   document family.
//! * [`build_scrape`] — a Prometheus text exposition combining the scan
//!   engine's cumulative registry with `daemon.*` gauges derived from the
//!   tracker.

use std::collections::BTreeMap;

use serde_json::Value;
use verfploeter::catchment::CatchmentMap;
use vp_obs::{Registry, RollingWindow};

use crate::alert::{alert_value, build_alert_doc, Alert, AlertConfig, Evaluator};
use crate::diff::{diff_rounds, DriftSummary, Origins, RoundDiff};
use crate::pipeline::{build_drift_doc, diff_value, summary_value};
use crate::profile::ChannelProfile;

/// What one [`DriftTracker::observe_round`] call produced.
#[derive(Debug, Clone)]
pub struct StreamStep {
    /// Rounds ingested so far, including this one (1-based).
    pub index: u64,
    /// The diff against the previous round; `None` for the first round.
    pub diff: Option<RoundDiff>,
    /// Fired/cleared alert transitions, for live display.
    pub transitions: Vec<String>,
}

/// Incremental drift state over a stream of catchment rounds.
///
/// Folding rounds one at a time maintains the same diffs, summary, alert
/// state, and documents as the batch pipeline; memory for the rolling
/// windows is O(window), independent of stream length.
#[derive(Debug, Clone)]
pub struct DriftTracker {
    origins: Option<Origins>,
    prev: Option<CatchmentMap>,
    /// Global round number of the round *before* the first ingested map;
    /// 0 for a whole-stream tracker. Lets a tracker resume mid-stream and
    /// still emit globally numbered diffs.
    start_round: u32,
    rounds_ingested: u64,
    diffs: Vec<RoundDiff>,
    summary: DriftSummary,
    evaluator: Evaluator,
    transitions: Vec<String>,
    flip_window: RollingWindow,
    skew_window: RollingWindow,
    coverage_window: RollingWindow,
}

impl DriftTracker {
    /// A tracker starting at the beginning of a stream. `window` is the
    /// rolling-window width in rounds (clamped to at least 1).
    pub fn new(config: AlertConfig, window: usize, origins: Option<Origins>) -> DriftTracker {
        DriftTracker::with_start_round(config, window, origins, 0)
    }

    /// A tracker resuming mid-stream: the first ingested map is treated
    /// as global round `start_round` (so its first diff is numbered
    /// `start_round + 1`). Feeding segment `rounds[k..]` of a stream with
    /// `start_round = k` produces the same globally numbered diffs the
    /// whole-stream tracker would — the windowed-split fold the
    /// equivalence proptests pin down.
    pub fn with_start_round(
        config: AlertConfig,
        window: usize,
        origins: Option<Origins>,
        start_round: u32,
    ) -> DriftTracker {
        DriftTracker {
            origins,
            prev: None,
            start_round,
            rounds_ingested: 0,
            diffs: Vec::new(),
            summary: DriftSummary::default(),
            evaluator: Evaluator::new(config),
            transitions: Vec::new(),
            flip_window: RollingWindow::new(window),
            skew_window: RollingWindow::new(window),
            coverage_window: RollingWindow::new(window),
        }
    }

    /// The global round number the *next* ingested map's diff will carry
    /// (meaningful once at least one map has been ingested). Callers use
    /// it to look up the matching scan duration before feeding the map.
    pub fn next_round(&self) -> u32 {
        self.start_round + self.rounds_ingested as u32
    }

    /// Ingests the next round. `duration_ns` is the round's sim-time scan
    /// span, if known; it feeds the `scan-duration` alert rule.
    pub fn observe_round(&mut self, map: CatchmentMap, duration_ns: Option<u64>) -> StreamStep {
        self.rounds_ingested += 1;
        let mut step = StreamStep {
            index: self.rounds_ingested,
            diff: None,
            transitions: Vec::new(),
        };
        if let Some(prev) = &self.prev {
            let round = self.start_round + self.diffs.len() as u32 + 1;
            let d = diff_rounds(prev, &map, round, self.origins.as_ref());
            self.summary.merge(&DriftSummary::from_diff(&d));
            let r = u64::from(round);
            self.flip_window.push(r, d.flip_rate_permille);
            self.skew_window.push(r, d.max_share_delta_permille);
            self.coverage_window.push(r, d.cur_blocks);
            step.transitions = self.evaluator.observe(&d, duration_ns);
            self.transitions.extend(step.transitions.iter().cloned());
            self.diffs.push(d.clone());
            step.diff = Some(d);
        }
        self.prev = Some(map);
        step
    }

    /// Maps ingested so far (diffs = one fewer).
    pub fn rounds_ingested(&self) -> u64 {
        self.rounds_ingested
    }

    /// All diffs produced so far, in round order.
    pub fn diffs(&self) -> &[RoundDiff] {
        &self.diffs
    }

    /// The most recent diff.
    pub fn last_diff(&self) -> Option<&RoundDiff> {
        self.diffs.last()
    }

    /// The merged drift summary over every ingested transition.
    pub fn summary(&self) -> &DriftSummary {
        &self.summary
    }

    /// All alert transitions so far, in order.
    pub fn transitions(&self) -> &[String] {
        &self.transitions
    }

    /// Rolling window of per-round flip rates (permille).
    pub fn flip_window(&self) -> &RollingWindow {
        &self.flip_window
    }

    /// Rolling window of per-round max site-share deltas (permille).
    pub fn skew_window(&self) -> &RollingWindow {
        &self.skew_window
    }

    /// Rolling window of responding-block counts per round.
    pub fn coverage_window(&self) -> &RollingWindow {
        &self.coverage_window
    }

    /// Live alert state as of the last ingested round: cleared alerts
    /// plus still-active ones (`cleared_round: null`), sorted like the
    /// batch pipeline's final alert set.
    pub fn alerts_snapshot(&self) -> Vec<Alert> {
        self.evaluator.snapshot()
    }

    /// The canonical `vp-monitor-drift/v1` document for everything
    /// ingested so far — byte-identical to the batch pipeline's over the
    /// same rounds.
    pub fn drift_doc(&self, source: &str) -> Value {
        build_drift_doc(source, &self.diffs, &self.summary)
    }

    /// The canonical `vp-monitor-alert/v1` document for everything
    /// ingested so far — byte-identical to the batch pipeline's over the
    /// same rounds.
    pub fn alert_doc(&self, source: &str) -> Value {
        build_alert_doc(
            source,
            self.evaluator.rounds_seen(),
            self.evaluator.config(),
            &self.alerts_snapshot(),
        )
    }
}

/// Static facts about a daemon run, rendered into both publication
/// surfaces.
#[derive(Debug, Clone)]
pub struct DaemonMeta {
    /// Names the round stream (e.g. `"vp-daemon/tiny"`).
    pub source: String,
    /// Scenario scale name (`tiny`, `small`, ...).
    pub scale: String,
    /// Scan shard count.
    pub shards: u64,
    /// Configured inter-round interval (sim time, nanoseconds).
    pub interval_ns: u64,
    /// Rounds the daemon was asked to run (0 = unbounded).
    pub rounds_total: u64,
}

fn window_value(w: &RollingWindow) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("width".to_owned(), Value::U64(w.width() as u64));
    obj.insert("len".to_owned(), Value::U64(w.len() as u64));
    obj.insert(
        "last".to_owned(),
        match w.last() {
            Some((_, v)) => Value::U64(v),
            None => Value::Null,
        },
    );
    obj.insert("min".to_owned(), Value::U64(w.min_value()));
    obj.insert("max".to_owned(), Value::U64(w.max_value()));
    obj.insert("mean".to_owned(), Value::U64(w.mean()));
    Value::Object(obj)
}

fn profile_value(p: &ChannelProfile) -> Value {
    let mut obj = BTreeMap::new();
    obj.insert("spans".to_owned(), Value::U64(p.spans as u64));
    obj.insert("dropped".to_owned(), Value::U64(p.dropped));
    obj.insert("root_ns".to_owned(), Value::U64(p.root_ns));
    obj.insert(
        "imbalance_permille".to_owned(),
        match p.imbalance_permille {
            Some(v) => Value::U64(v),
            None => Value::Null,
        },
    );
    obj.insert(
        "critical_path_ns".to_owned(),
        match p.critical_path_ns {
            Some(v) => Value::U64(v),
            None => Value::Null,
        },
    );
    obj.insert(
        "phases".to_owned(),
        Value::Array(
            p.phases
                .iter()
                .map(|row| {
                    let mut r = BTreeMap::new();
                    r.insert("phase".to_owned(), Value::Str(row.phase.clone()));
                    r.insert("count".to_owned(), Value::U64(row.count));
                    r.insert("total_ns".to_owned(), Value::U64(row.total_ns));
                    r.insert("self_ns".to_owned(), Value::U64(row.self_ns));
                    Value::Object(r)
                })
                .collect(),
        ),
    );
    Value::Object(obj)
}

/// Renders the canonical `vp-daemon-status/v1` document: run config,
/// ingest progress, the current round's diff, the rolling signal windows,
/// the cumulative drift summary, the live alert log, and (when the scan
/// ran with the flight recorder on) the last round's sim-channel profile
/// digest. Keys are `BTreeMap`-sorted and all values integers, strings or
/// nulls, so equal states serialize byte-identically.
pub fn build_status_doc(
    meta: &DaemonMeta,
    tracker: &DriftTracker,
    profile: Option<&ChannelProfile>,
) -> Value {
    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-daemon-status/v1".to_owned()),
    );
    doc.insert("source".to_owned(), Value::Str(meta.source.clone()));
    doc.insert("scale".to_owned(), Value::Str(meta.scale.clone()));
    doc.insert("shards".to_owned(), Value::U64(meta.shards));
    doc.insert("interval_ns".to_owned(), Value::U64(meta.interval_ns));
    doc.insert("rounds_total".to_owned(), Value::U64(meta.rounds_total));
    doc.insert(
        "rounds_ingested".to_owned(),
        Value::U64(tracker.rounds_ingested()),
    );
    doc.insert(
        "current".to_owned(),
        match tracker.last_diff() {
            Some(d) => diff_value(d),
            None => Value::Null,
        },
    );
    let mut windows = BTreeMap::new();
    windows.insert(
        "flip_rate_permille".to_owned(),
        window_value(tracker.flip_window()),
    );
    windows.insert(
        "share_skew_permille".to_owned(),
        window_value(tracker.skew_window()),
    );
    windows.insert(
        "coverage_blocks".to_owned(),
        window_value(tracker.coverage_window()),
    );
    doc.insert("windows".to_owned(), Value::Object(windows));
    doc.insert("summary".to_owned(), summary_value(tracker.summary()));

    let alerts = tracker.alerts_snapshot();
    let active = alerts.iter().filter(|a| a.cleared_round.is_none()).count();
    let mut alerts_obj = BTreeMap::new();
    alerts_obj.insert("active".to_owned(), Value::U64(active as u64));
    alerts_obj.insert(
        "log".to_owned(),
        Value::Array(alerts.iter().map(alert_value).collect()),
    );
    doc.insert("alerts".to_owned(), Value::Object(alerts_obj));
    doc.insert(
        "profile".to_owned(),
        match profile {
            Some(p) => profile_value(p),
            None => Value::Null,
        },
    );
    Value::Object(doc)
}

/// The four alert rules, in the order the scrape publishes their
/// active/inactive gauges.
pub const ALERT_RULES: [&str; 4] = ["coverage-drop", "flip-rate", "load-skew", "scan-duration"];

/// Renders the daemon's Prometheus scrape: the scan engine's cumulative
/// registry (counters/histograms summed over every round so far) plus
/// `daemon.*` gauges derived from the tracker — ingest progress, the
/// newest and window-mean value of each rolling signal, a 0/1
/// `daemon.alert.active{rule=...}` gauge for every rule, and the current
/// per-site load shares. `site_names` maps raw site ids to display names
/// for the `site` label (ids are used verbatim when absent).
pub fn build_scrape(
    meta: &DaemonMeta,
    tracker: &DriftTracker,
    scan_metrics: &Registry,
    site_names: &BTreeMap<u8, String>,
) -> String {
    let mut reg = scan_metrics.clone();
    reg.gauge_add("daemon.rounds.ingested", &[], tracker.rounds_ingested() as i64);
    reg.gauge_add("daemon.rounds.total", &[], meta.rounds_total as i64);
    reg.gauge_add("daemon.shards", &[], meta.shards as i64);
    reg.gauge_add("daemon.interval.ns", &[], meta.interval_ns as i64);

    let last = |w: &RollingWindow| w.last().map(|(_, v)| v).unwrap_or(0);
    reg.gauge_add("daemon.flip.rate.permille", &[], last(tracker.flip_window()) as i64);
    reg.gauge_add(
        "daemon.flip.rate.window.mean.permille",
        &[],
        tracker.flip_window().mean() as i64,
    );
    reg.gauge_add("daemon.share.skew.permille", &[], last(tracker.skew_window()) as i64);
    reg.gauge_add(
        "daemon.share.skew.window.mean.permille",
        &[],
        tracker.skew_window().mean() as i64,
    );
    reg.gauge_add(
        "daemon.coverage.blocks",
        &[],
        last(tracker.coverage_window()) as i64,
    );
    reg.gauge_add(
        "daemon.coverage.blocks.window.mean",
        &[],
        tracker.coverage_window().mean() as i64,
    );

    let alerts = tracker.alerts_snapshot();
    for rule in ALERT_RULES {
        let active = alerts
            .iter()
            .any(|a| a.rule == rule && a.cleared_round.is_none());
        reg.gauge_add(
            "daemon.alert.active",
            &[("rule", rule)],
            i64::from(active),
        );
    }
    if let Some(d) = tracker.last_diff() {
        for (&site, &share) in &d.site_shares_permille {
            let id = site.to_string();
            let name = site_names.get(&site).map(String::as_str).unwrap_or(&id);
            reg.gauge_add("daemon.site.share.permille", &[("site", name)], share as i64);
        }
    }

    let mut help = BTreeMap::new();
    for (name, text) in [
        ("daemon.rounds.ingested", "Scan rounds ingested by the daemon."),
        ("daemon.rounds.total", "Rounds the daemon was asked to run (0 = unbounded)."),
        ("daemon.shards", "Scan shard count."),
        ("daemon.interval.ns", "Configured inter-round interval, sim-time nanoseconds."),
        ("daemon.flip.rate.permille", "Newest per-round catchment flip rate."),
        (
            "daemon.flip.rate.window.mean.permille",
            "Mean flip rate over the rolling window.",
        ),
        ("daemon.share.skew.permille", "Newest per-round max site-share delta."),
        (
            "daemon.share.skew.window.mean.permille",
            "Mean max site-share delta over the rolling window.",
        ),
        ("daemon.coverage.blocks", "Responding /24 blocks in the newest round."),
        (
            "daemon.coverage.blocks.window.mean",
            "Mean responding-block count over the rolling window.",
        ),
        ("daemon.alert.active", "1 while the rule's hysteresis alert is active."),
        ("daemon.site.share.permille", "Current load share per anycast site."),
    ] {
        help.insert(name.to_owned(), text.to_owned());
    }
    reg.to_prometheus_text_with_help(&help)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_diff_pipeline;
    use crate::schema::validate_tagged;
    use vp_bgp::SiteId;
    use vp_net::Block24;

    fn map(name: &str, pairs: &[(u32, u8)]) -> CatchmentMap {
        CatchmentMap::from_pairs(name, pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))))
    }

    fn drifting_rounds() -> Vec<CatchmentMap> {
        vec![
            map("r0", &[(1, 0), (2, 0), (3, 1), (4, 1)]),
            map("r1", &[(1, 0), (2, 0), (3, 1), (4, 1)]),
            map("r2", &[(1, 1), (2, 0), (3, 1)]),
            map("r3", &[(1, 0), (2, 0), (3, 1)]),
            map("r4", &[(1, 1), (2, 0), (3, 1)]),
        ]
    }

    fn meta() -> DaemonMeta {
        DaemonMeta {
            source: "unit".to_owned(),
            scale: "tiny".to_owned(),
            shards: 2,
            interval_ns: 900_000_000_000,
            rounds_total: 5,
        }
    }

    #[test]
    fn streaming_matches_batch_on_the_fixture() {
        let rounds = drifting_rounds();
        let batch = run_diff_pipeline("t", &rounds, None, None, &AlertConfig::default());
        let mut tracker = DriftTracker::new(AlertConfig::default(), 8, None);
        for r in &rounds {
            tracker.observe_round(r.clone(), None);
        }
        assert_eq!(tracker.diffs(), &batch.diffs[..]);
        assert_eq!(tracker.summary(), &batch.summary);
        assert_eq!(tracker.transitions(), &batch.transitions[..]);
        assert_eq!(
            serde_json::to_string_pretty(&tracker.drift_doc("t")).ok(),
            serde_json::to_string_pretty(&batch.drift_doc).ok()
        );
        assert_eq!(
            serde_json::to_string_pretty(&tracker.alert_doc("t")).ok(),
            serde_json::to_string_pretty(&batch.alert_doc).ok()
        );
    }

    #[test]
    fn windows_track_the_newest_rounds_only() {
        let rounds = drifting_rounds();
        let mut tracker = DriftTracker::new(AlertConfig::default(), 2, None);
        for r in &rounds {
            tracker.observe_round(r.clone(), None);
        }
        // 4 diffs, window width 2: rounds 3 and 4 retained.
        assert_eq!(tracker.flip_window().len(), 2);
        assert_eq!(
            tracker.coverage_window().iter().collect::<Vec<_>>(),
            vec![(3, 3), (4, 3)]
        );
        assert_eq!(tracker.next_round(), 5);
    }

    #[test]
    fn status_doc_validates_and_is_stable() {
        let mut tracker = DriftTracker::new(AlertConfig::default(), 4, None);
        // Empty tracker: current is null, windows empty.
        let empty = build_status_doc(&meta(), &tracker, None);
        assert_eq!(validate_tagged(&empty), Vec::<String>::new());
        assert_eq!(empty.get("current"), Some(&Value::Null));

        for r in drifting_rounds() {
            tracker.observe_round(r, None);
        }
        let doc = build_status_doc(&meta(), &tracker, None);
        assert_eq!(validate_tagged(&doc), Vec::<String>::new());
        assert_eq!(
            serde_json::to_string_pretty(&doc).ok(),
            serde_json::to_string_pretty(&build_status_doc(&meta(), &tracker, None)).ok()
        );
        assert_eq!(
            doc.get("rounds_ingested").and_then(Value::as_u64),
            Some(5)
        );
        assert!(doc.get("current").is_some_and(|c| c.get("round").is_some()));
        let active = doc
            .get("alerts")
            .and_then(|a| a.get("active"))
            .and_then(Value::as_u64);
        // The sustained drift keeps both flip-rate and load-skew active.
        assert_eq!(active, Some(2), "{doc:?}");
    }

    #[test]
    fn scrape_carries_scan_and_daemon_series() {
        let mut tracker = DriftTracker::new(AlertConfig::default(), 4, None);
        for r in drifting_rounds() {
            tracker.observe_round(r, None);
        }
        let mut scan = Registry::new();
        scan.counter_add("scan.probes_sent", &[], 123);
        let names: BTreeMap<u8, String> = [(0, "LAX".to_owned())].into_iter().collect();
        let text = build_scrape(&meta(), &tracker, &scan, &names);
        assert!(text.contains("scan_probes_sent 123"), "{text}");
        assert!(text.contains("daemon_rounds_ingested 5"), "{text}");
        assert!(text.contains("# TYPE daemon_rounds_ingested gauge"), "{text}");
        assert!(
            text.contains("# HELP daemon_rounds_ingested Scan rounds ingested by the daemon."),
            "{text}"
        );
        // The sustained drift leaves flip-rate active; the other rules are 0.
        assert!(
            text.contains("daemon_alert_active{rule=\"flip-rate\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("daemon_alert_active{rule=\"coverage-drop\"} 0"),
            "{text}"
        );
        // Site 0 gets its display name; site 1 falls back to the raw id.
        assert!(
            text.contains("daemon_site_share_permille{site=\"LAX\"}"),
            "{text}"
        );
        assert!(
            text.contains("daemon_site_share_permille{site=\"1\"}"),
            "{text}"
        );
        // Deterministic for equal state.
        assert_eq!(text, build_scrape(&meta(), &tracker, &scan, &names));
    }
}
