//! Merge-algebra proptests for [`vp_monitor::DriftSummary`]: associative,
//! commutative, empty identity — the same contract `SimStats` and
//! `Registry` carry, and the property that makes windowed drift summaries
//! fold to the same totals however monitoring windows are grouped.

use proptest::prelude::*;
use vp_monitor::diff::{diff_sequence, DriftSummary, RoundDiff};
use verfploeter::catchment::CatchmentMap;
use vp_bgp::SiteId;
use vp_net::Block24;

/// A generated drift summary over a closed AS set so merges collide on
/// keys.
fn summary_strategy() -> impl Strategy<Value = DriftSummary> {
    let asn_flip = (0u32..4, 1u64..50);
    (
        (0u64..20, 0u64..500, 0u64..50, 0u64..20), // rounds/stable/flipped/to_nr
        (0u64..20, 0u64..50, 0u64..1000, 0u64..1000), // from_nr/max_flipped/rate/cover
        (0u64..1000, prop::collection::vec(asn_flip, 0..5)),
    )
        .prop_map(
            |((rounds, stable, flipped, to_nr), (from_nr, maxf, rate, cover), (share, flips))| {
                let mut s = DriftSummary {
                    rounds,
                    stable,
                    flipped,
                    to_nr,
                    from_nr,
                    max_flipped: maxf,
                    max_flip_rate_permille: rate,
                    max_coverage_drop_permille: cover,
                    max_share_delta_permille: share,
                    ..DriftSummary::default()
                };
                for (asn, n) in flips {
                    *s.flips_by_as.entry(64500 + asn).or_insert(0) += n;
                }
                s
            },
        )
}

/// A short random round sequence over a small block/site universe, so
/// flips, coverage changes and share moves all actually occur.
fn rounds_strategy() -> impl Strategy<Value = Vec<CatchmentMap>> {
    let round = prop::collection::vec((0u32..8, 0u8..3), 1..8);
    prop::collection::vec(round, 2..6).prop_map(|rounds| {
        rounds
            .into_iter()
            .enumerate()
            .map(|(i, pairs)| {
                CatchmentMap::from_pairs(
                    &format!("r{i}"),
                    pairs.into_iter().map(|(b, s)| (Block24(b), SiteId(s))),
                )
            })
            .collect()
    })
}

// vp-lint: merge-tested(DriftSummary::merge)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drift_summary_merge_is_associative_and_commutative(
        a in summary_strategy(),
        b in summary_strategy(),
        c in summary_strategy(),
    ) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    #[test]
    fn drift_summary_merge_empty_identity(a in summary_strategy()) {
        let mut left = DriftSummary::default();
        left.merge(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&DriftSummary::default());
        prop_assert_eq!(&right, &a);
    }

    /// Splitting a real diff sequence at any point and merging the two
    /// window summaries equals summarizing the whole window at once.
    #[test]
    fn windowed_summaries_fold_like_the_whole(
        rounds in rounds_strategy(),
        split in 0usize..8,
    ) {
        let diffs: Vec<RoundDiff> = diff_sequence(&rounds, None);
        let whole = DriftSummary::accumulate(&diffs);
        let cut = split.min(diffs.len());
        let mut folded = DriftSummary::accumulate(&diffs[..cut]);
        folded.merge(&DriftSummary::accumulate(&diffs[cut..]));
        prop_assert_eq!(&folded, &whole);
        // The taxonomy partitions every previous round's responders.
        for d in &diffs {
            prop_assert_eq!(d.stable + d.flipped + d.to_nr, d.prev_blocks);
        }
    }
}
