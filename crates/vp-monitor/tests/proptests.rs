//! Merge-algebra proptests for [`vp_monitor::DriftSummary`]: associative,
//! commutative, empty identity — the same contract `SimStats` and
//! `Registry` carry, and the property that makes windowed drift summaries
//! fold to the same totals however monitoring windows are grouped.

use std::collections::BTreeMap;

use proptest::prelude::*;
use vp_monitor::alert::AlertConfig;
use vp_monitor::diff::{diff_sequence, DriftSummary, Origins, RoundDiff};
use vp_monitor::pipeline::run_diff_pipeline;
use vp_monitor::stream::DriftTracker;
use verfploeter::catchment::CatchmentMap;
use vp_bgp::SiteId;
use vp_net::{Asn, Block24};

/// A generated drift summary over a closed AS set so merges collide on
/// keys.
fn summary_strategy() -> impl Strategy<Value = DriftSummary> {
    let asn_flip = (0u32..4, 1u64..50);
    (
        (0u64..20, 0u64..500, 0u64..50, 0u64..20), // rounds/stable/flipped/to_nr
        (0u64..20, 0u64..50, 0u64..1000, 0u64..1000), // from_nr/max_flipped/rate/cover
        (0u64..1000, prop::collection::vec(asn_flip, 0..5)),
    )
        .prop_map(
            |((rounds, stable, flipped, to_nr), (from_nr, maxf, rate, cover), (share, flips))| {
                let mut s = DriftSummary {
                    rounds,
                    stable,
                    flipped,
                    to_nr,
                    from_nr,
                    max_flipped: maxf,
                    max_flip_rate_permille: rate,
                    max_coverage_drop_permille: cover,
                    max_share_delta_permille: share,
                    ..DriftSummary::default()
                };
                for (asn, n) in flips {
                    *s.flips_by_as.entry(64500 + asn).or_insert(0) += n;
                }
                s
            },
        )
}

/// A short random round sequence over a small block/site universe, so
/// flips, coverage changes and share moves all actually occur.
fn rounds_strategy() -> impl Strategy<Value = Vec<CatchmentMap>> {
    let round = prop::collection::vec((0u32..8, 0u8..3), 1..8);
    prop::collection::vec(round, 2..6).prop_map(|rounds| {
        rounds
            .into_iter()
            .enumerate()
            .map(|(i, pairs)| {
                CatchmentMap::from_pairs(
                    &format!("r{i}"),
                    pairs.into_iter().map(|(b, s)| (Block24(b), SiteId(s))),
                )
            })
            .collect()
    })
}

// vp-lint: merge-tested(DriftSummary::merge)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn drift_summary_merge_is_associative_and_commutative(
        a in summary_strategy(),
        b in summary_strategy(),
        c in summary_strategy(),
    ) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    #[test]
    fn drift_summary_merge_empty_identity(a in summary_strategy()) {
        let mut left = DriftSummary::default();
        left.merge(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&DriftSummary::default());
        prop_assert_eq!(&right, &a);
    }

    /// Splitting a real diff sequence at any point and merging the two
    /// window summaries equals summarizing the whole window at once.
    #[test]
    fn windowed_summaries_fold_like_the_whole(
        rounds in rounds_strategy(),
        split in 0usize..8,
    ) {
        let diffs: Vec<RoundDiff> = diff_sequence(&rounds, None);
        let whole = DriftSummary::accumulate(&diffs);
        let cut = split.min(diffs.len());
        let mut folded = DriftSummary::accumulate(&diffs[..cut]);
        folded.merge(&DriftSummary::accumulate(&diffs[cut..]));
        prop_assert_eq!(&folded, &whole);
        // The taxonomy partitions every previous round's responders.
        for d in &diffs {
            prop_assert_eq!(d.stable + d.flipped + d.to_nr, d.prev_blocks);
        }
    }
}

/// Origins for the proptest block universe, so per-AS flip attribution is
/// exercised on both the batch and streaming paths.
fn origins_fixture() -> Origins {
    (0u32..8).map(|b| (Block24(b), Asn(64500 + b))).collect()
}

/// Sim-time scan durations keyed by 1-based diff round — a baseline run
/// of quiet rounds with a blowup late, so the `scan-duration` rule's
/// baseline-then-compare path runs too.
fn durations_fixture(rounds: usize) -> BTreeMap<u32, u64> {
    (1..=rounds as u32)
        .map(|r| (r, if r >= 6 { 500 } else { 100 + u64::from(r) % 7 }))
        .collect()
}

/// An aggressive config so short generated sequences actually fire and
/// clear alerts (the default trigger/clear windows rarely complete in
/// 2-6 rounds).
fn twitchy_config() -> AlertConfig {
    AlertConfig {
        flip_rate_permille: 100,
        share_delta_permille: 100,
        coverage_drop_permille: 100,
        trigger_rounds: 1,
        clear_rounds: 1,
        duration_baseline_rounds: 2,
        ..AlertConfig::default()
    }
}

// Streaming-equals-batch: the DriftTracker fed one round at a time must
// reproduce run_diff_pipeline bit-for-bit — diffs, summary, transitions,
// and the canonical documents.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_tracker_matches_batch_pipeline(rounds in rounds_strategy()) {
        let origins = origins_fixture();
        let durations = durations_fixture(rounds.len());
        let batch = run_diff_pipeline(
            "prop",
            &rounds,
            Some(&origins),
            Some(&durations),
            &twitchy_config(),
        );

        let mut tracker = DriftTracker::new(twitchy_config(), 3, Some(origins));
        for r in &rounds {
            let dur = durations.get(&tracker.next_round()).copied();
            tracker.observe_round(r.clone(), dur);
        }

        prop_assert_eq!(tracker.diffs(), &batch.diffs[..]);
        prop_assert_eq!(tracker.summary(), &batch.summary);
        prop_assert_eq!(tracker.transitions(), &batch.transitions[..]);
        prop_assert_eq!(tracker.alerts_snapshot(), batch.alerts);
        prop_assert_eq!(
            serde_json::to_string_pretty(&tracker.drift_doc("prop")).ok(),
            serde_json::to_string_pretty(&batch.drift_doc).ok()
        );
        prop_assert_eq!(
            serde_json::to_string_pretty(&tracker.alert_doc("prop")).ok(),
            serde_json::to_string_pretty(&batch.alert_doc).ok()
        );
    }

    /// The windowed-split fold: cutting the stream anywhere, running the
    /// tail through a second tracker resuming at the cut (it re-ingests
    /// the boundary round as its baseline), then concatenating diffs and
    /// merging summaries and windows equals the whole-stream tracker.
    #[test]
    fn streaming_split_fold_matches_whole(
        rounds in rounds_strategy(),
        split in 1usize..6,
    ) {
        let origins = origins_fixture();
        let config = twitchy_config();
        let width = 3usize;

        let mut whole = DriftTracker::new(config.clone(), width, Some(origins.clone()));
        for r in &rounds {
            whole.observe_round(r.clone(), None);
        }

        let cut = split.min(rounds.len() - 1).max(1);
        let mut head = DriftTracker::new(config.clone(), width, Some(origins.clone()));
        for r in &rounds[..cut] {
            head.observe_round(r.clone(), None);
        }
        let mut tail =
            DriftTracker::with_start_round(config, width, Some(origins), cut as u32 - 1);
        for r in &rounds[cut - 1..] {
            tail.observe_round(r.clone(), None);
        }

        // Diffs concatenate with global round numbers intact.
        let mut diffs = head.diffs().to_vec();
        diffs.extend(tail.diffs().iter().cloned());
        prop_assert_eq!(&diffs[..], whole.diffs());

        // Summaries and rolling windows merge to the whole-stream state.
        let mut summary = head.summary().clone();
        summary.merge(tail.summary());
        prop_assert_eq!(&summary, whole.summary());

        let mut flip = head.flip_window().clone();
        flip.merge(tail.flip_window());
        prop_assert_eq!(&flip, whole.flip_window());
        let mut skew = head.skew_window().clone();
        skew.merge(tail.skew_window());
        prop_assert_eq!(&skew, whole.skew_window());
        let mut coverage = head.coverage_window().clone();
        coverage.merge(tail.coverage_window());
        prop_assert_eq!(&coverage, whole.coverage_window());
    }
}
