//! Gates on the committed golden flight document
//! (`results/obs/flight_scan15k.json`, written by `bench_scan --flight`):
//! it must validate against the embedded `vp-obs-flight/v1` schema, its
//! sim channel must obey the attribution algebra (phase self-times tile
//! the round exactly), its wall channel must carry per-shard executor
//! spans, and the chrome-trace export must be well-formed JSON.

use serde_json::Value;
use vp_monitor::profile::{parse_flight_doc, profile_channel, render_report};
use vp_monitor::schema::validate_tagged;

const GOLDEN: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/obs/flight_scan15k.json"
));

fn golden() -> vp_obs::FlightDoc {
    let value: Value =
        serde_json::from_str(GOLDEN).unwrap_or_else(|e| panic!("golden is not JSON: {e}"));
    assert_eq!(
        validate_tagged(&value),
        Vec::<String>::new(),
        "golden flight doc fails its schema"
    );
    parse_flight_doc(&value, "flight_scan15k.json").unwrap_or_else(|e| panic!("{e}"))
}

#[test]
fn sim_channel_self_times_tile_the_round() {
    let doc = golden();
    assert!(
        doc.sim.spans.len() >= 6,
        "sim channel should carry the six engine-phase spans, got {}",
        doc.sim.spans.len()
    );
    assert_eq!(doc.sim.dropped, 0, "sim ring must never overflow");
    let p = profile_channel(&doc.sim, 8);
    assert!(p.root_ns > 0, "sim round span must be non-empty");
    let self_sum: u64 = p.phases.iter().map(|r| r.self_ns).sum();
    assert_eq!(
        self_sum, p.root_ns,
        "sim phase self-times must sum exactly to the round total"
    );
    // The sim channel has no shard-attributed spans: imbalance is a
    // wall-channel statistic.
    assert_eq!(p.imbalance_permille, None);
}

#[test]
fn wall_channel_reports_per_shard_imbalance() {
    let doc = golden();
    let p = profile_channel(&doc.wall, 8);
    assert!(
        !p.shards.is_empty(),
        "wall channel must carry per-shard executor spans"
    );
    assert_eq!(p.shards.len(), 8, "bench flight run shards at K=8");
    for (i, &(k, _)) in p.shards.iter().enumerate() {
        assert_eq!(k as usize, i, "shard compute rows must be id-ordered");
    }
    assert!(p.imbalance_permille.is_some());
    assert!(p.imbalance_permille.unwrap_or(0) <= 1000);
    assert!(p.critical_path_ns.is_some());
    assert!(
        doc.wall
            .spans
            .iter()
            .any(|s| s.name == "shard.compute" && s.shard.is_some()),
        "wall channel must include shard.compute intervals"
    );
}

#[test]
fn report_covers_both_channels() {
    let doc = golden();
    let text = render_report(&doc, 5);
    assert!(text.contains("== sim channel"), "{text}");
    assert!(text.contains("== wall channel"), "{text}");
    assert!(text.contains("scan.round"), "{text}");
    assert!(text.contains("imbalance"), "{text}");
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let doc = golden();
    let trace: Value = serde_json::from_str(&doc.to_chrome_trace())
        .unwrap_or_else(|e| panic!("chrome trace is not valid JSON: {e}"));
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("chrome trace has no traceEvents array"));
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Value::as_str), Some("X"));
        assert!(ev.get("name").and_then(Value::as_str).is_some());
        let pid = ev.get("pid").and_then(Value::as_u64);
        assert!(pid == Some(1) || pid == Some(2), "pid 1=sim, 2=wall");
    }
    // Round-tripping the golden through parse keeps the canonical bytes.
    assert_eq!(doc.to_canonical_json(), GOLDEN);
}
