//! Property-based tests: every packet format must roundtrip through its
//! wire encoding, and parsers must never panic on arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;
use vp_net::Ipv4Addr;
use vp_packet::{
    DnsClass, DnsFlags, DnsMessage, DnsName, DnsQuestion, DnsRecord, DnsType, IcmpMessage,
    Ipv4Packet, Protocol, Rcode, UdpDatagram,
};

fn arb_payload(max: usize) -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z0-9-]{1,20}"
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    prop::collection::vec(arb_label(), 0..5).prop_map(|labels| {
        let s = labels.join(".");
        DnsName::from_str(&s).unwrap()
    })
}

proptest! {
    #[test]
    fn ipv4_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        proto in any::<u8>(),
        ttl in any::<u8>(),
        ident in any::<u16>(),
        payload in arb_payload(200),
    ) {
        let p = Ipv4Packet {
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
            protocol: Protocol::from_number(proto),
            ttl,
            ident,
            payload,
        };
        prop_assert_eq!(Ipv4Packet::parse(&p.emit()).unwrap(), p);
    }

    #[test]
    fn ipv4_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Ipv4Packet::parse(&bytes);
    }

    #[test]
    fn icmp_echo_roundtrip(ident in any::<u16>(), seq in any::<u16>(), payload in arb_payload(100)) {
        let m = IcmpMessage::echo_request(ident, seq, payload);
        prop_assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m.clone());
        let r = m.reply().unwrap();
        prop_assert_eq!(IcmpMessage::parse(&r.emit()).unwrap(), r);
    }

    #[test]
    fn icmp_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = IcmpMessage::parse(&bytes);
    }

    #[test]
    fn icmp_single_bitflip_detected(
        ident in any::<u16>(),
        seq in any::<u16>(),
        byte in 0usize..8,
        bit in 0u8..8,
    ) {
        let m = IcmpMessage::echo_request(ident, seq, Bytes::new());
        let mut wire = m.emit().to_vec();
        wire[byte] ^= 1 << bit;
        // Either the checksum catches it, or (for flips inside the checksum
        // field itself producing the complementary encoding 0x0000/0xffff)
        // the parse may succeed but then must differ from the original —
        // EXCEPT that one's-complement has two zero representations, so a
        // flip within the checksum bytes can alias. All other bytes must
        // never parse back to the identical message silently... a flip in
        // type/ident/seq either fails the checksum or changes the message.
        match IcmpMessage::parse(&wire) {
            Ok(parsed) => prop_assert!(byte == 2 || byte == 3 || parsed != m),
            Err(_) => {}
        }
    }

    #[test]
    fn udp_roundtrip(
        sp in any::<u16>(),
        dp in any::<u16>(),
        src in any::<u32>(),
        dst in any::<u32>(),
        payload in arb_payload(200),
    ) {
        let d = UdpDatagram::new(sp, dp, payload);
        let wire = d.emit(Ipv4Addr(src), Ipv4Addr(dst));
        prop_assert_eq!(UdpDatagram::parse(&wire, Ipv4Addr(src), Ipv4Addr(dst)).unwrap(), d);
    }

    #[test]
    fn udp_parse_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let _ = UdpDatagram::parse(&bytes, Ipv4Addr(src), Ipv4Addr(dst));
    }

    #[test]
    fn dns_message_roundtrip(
        id in any::<u16>(),
        response in any::<bool>(),
        rd in any::<bool>(),
        rcode in 0u8..16,
        qname in arb_name(),
        txt in "[ -~]{0,80}",
        ttl in any::<u32>(),
        addr in any::<u32>(),
    ) {
        let msg = DnsMessage {
            id,
            flags: DnsFlags {
                response,
                recursion_desired: rd,
                rcode: Rcode::from_number(rcode),
                ..DnsFlags::default()
            },
            questions: vec![DnsQuestion {
                name: qname.clone(),
                qtype: DnsType::Txt,
                qclass: DnsClass::Chaos,
            }],
            answers: vec![
                DnsRecord::Txt {
                    name: qname.clone(),
                    class: DnsClass::Chaos,
                    ttl,
                    strings: vec![txt],
                },
                DnsRecord::A { name: qname, ttl, addr: Ipv4Addr(addr) },
            ],
            additionals: vec![],
        };
        prop_assert_eq!(DnsMessage::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn dns_parse_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = DnsMessage::parse(&bytes);
    }

    /// A full probe packet (IPv4 over ICMP) roundtrips through both layers,
    /// exactly as the simulator transmits it.
    #[test]
    fn nested_probe_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        ident in any::<u16>(),
        seq in any::<u16>(),
    ) {
        let icmp = IcmpMessage::echo_request(ident, seq, Bytes::from_static(b"vp"));
        let ip = Ipv4Packet::new(Ipv4Addr(src), Ipv4Addr(dst), Protocol::Icmp, icmp.emit());
        let wire = ip.emit();
        let outer = Ipv4Packet::parse(&wire).unwrap();
        prop_assert_eq!(outer.protocol, Protocol::Icmp);
        let inner = IcmpMessage::parse(&outer.payload).unwrap();
        prop_assert_eq!(inner, icmp);
    }
}
