//! ICMP echo messages — the probe currency of Verfploeter.
//!
//! The prober sends Echo Requests whose identifier encodes the measurement
//! round ("a unique identifier in the ICMP header was used in every
//! measurement round to ensure data set separation", §4.2) and whose
//! sequence number indexes the hitlist entry. Replies echo both back, which
//! is how the collector pairs replies with probes and drops foreign traffic.

use bytes::{BufMut, Bytes, BytesMut};

use crate::checksum;
use crate::error::PacketError;

const ECHO_REPLY: u8 = 0;
const DEST_UNREACHABLE: u8 = 3;
const ECHO_REQUEST: u8 = 8;
const MIN_LEN: usize = 8;

/// The ICMP messages the simulator models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    EchoRequest {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    EchoReply {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    /// Destination unreachable, carrying the offending header bytes.
    DestUnreachable { code: u8, original: Bytes },
}

impl IcmpMessage {
    /// Convenience constructor for a probe.
    pub fn echo_request(ident: u16, seq: u16, payload: Bytes) -> Self {
        IcmpMessage::EchoRequest {
            ident,
            seq,
            payload,
        }
    }

    /// The reply a well-behaved host sends to this message, if any.
    pub fn reply(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => Some(IcmpMessage::EchoReply {
                ident: *ident,
                seq: *seq,
                payload: payload.clone(),
            }),
            _ => None,
        }
    }

    /// The echo identifier, if this is an echo message.
    pub fn ident(&self) -> Option<u16> {
        match self {
            IcmpMessage::EchoRequest { ident, .. } | IcmpMessage::EchoReply { ident, .. } => {
                Some(*ident)
            }
            IcmpMessage::DestUnreachable { .. } => None,
        }
    }

    /// The echo sequence number, if this is an echo message.
    pub fn seq(&self) -> Option<u16> {
        match self {
            IcmpMessage::EchoRequest { seq, .. } | IcmpMessage::EchoReply { seq, .. } => Some(*seq),
            IcmpMessage::DestUnreachable { .. } => None,
        }
    }

    /// Serializes to wire bytes with a correct ICMP checksum.
    pub fn emit(&self) -> Bytes {
        let (ty, code, a, b, body): (u8, u8, u16, u16, &Bytes) = match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => (ECHO_REQUEST, 0, *ident, *seq, payload),
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => (ECHO_REPLY, 0, *ident, *seq, payload),
            IcmpMessage::DestUnreachable { code, original } => {
                (DEST_UNREACHABLE, *code, 0, 0, original)
            }
        };
        let mut buf = BytesMut::with_capacity(MIN_LEN + body.len());
        buf.put_u8(ty);
        buf.put_u8(code);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(a);
        buf.put_u16(b);
        buf.extend_from_slice(body);
        let ck = checksum::internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes()); // vp-lint: allow(g1): buf begins with the 8 fixed header bytes written just above.
        buf.freeze()
    }

    /// Parses wire bytes, validating length, checksum and message type.
    // vp-lint: allow(g1): every index reads inside the MIN_LEN prefix whose presence the first branch guarantees.
    pub fn parse(data: &[u8]) -> Result<IcmpMessage, PacketError> {
        if data.len() < MIN_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_LEN,
                got: data.len(),
            });
        }
        if !checksum::verify(data) {
            let got = u16::from_be_bytes([data[2], data[3]]);
            return Err(PacketError::BadChecksum { expected: 0, got });
        }
        let ty = data[0];
        let code = data[1];
        let a = u16::from_be_bytes([data[4], data[5]]);
        let b = u16::from_be_bytes([data[6], data[7]]);
        let body = Bytes::copy_from_slice(&data[MIN_LEN..]);
        match ty {
            ECHO_REQUEST => Ok(IcmpMessage::EchoRequest {
                ident: a,
                seq: b,
                payload: body,
            }),
            ECHO_REPLY => Ok(IcmpMessage::EchoReply {
                ident: a,
                seq: b,
                payload: body,
            }),
            DEST_UNREACHABLE => Ok(IcmpMessage::DestUnreachable {
                code,
                original: body,
            }),
            other => Err(PacketError::UnknownIcmpType(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let m = IcmpMessage::echo_request(0x1234, 7, Bytes::from_static(b"verfploeter"));
        let wire = m.emit();
        assert_eq!(IcmpMessage::parse(&wire).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip() {
        let m = IcmpMessage::EchoReply {
            ident: 9,
            seq: 65535,
            payload: Bytes::new(),
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
    }

    #[test]
    fn unreachable_roundtrip() {
        let m = IcmpMessage::DestUnreachable {
            code: 1,
            original: Bytes::from_static(&[1, 2, 3, 4]),
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
        assert_eq!(m.ident(), None);
        assert_eq!(m.seq(), None);
    }

    #[test]
    fn reply_mirrors_request_fields() {
        let req = IcmpMessage::echo_request(42, 1000, Bytes::from_static(b"x"));
        let rep = req.reply().unwrap();
        assert_eq!(rep.ident(), Some(42));
        assert_eq!(rep.seq(), Some(1000));
        match rep {
            IcmpMessage::EchoReply { payload, .. } => assert_eq!(&payload[..], b"x"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn replies_do_not_reply() {
        let rep = IcmpMessage::EchoReply {
            ident: 1,
            seq: 2,
            payload: Bytes::new(),
        };
        assert!(rep.reply().is_none());
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut wire = BytesMut::from(&IcmpMessage::echo_request(1, 2, Bytes::new()).emit()[..]);
        wire[4] ^= 0xff;
        assert!(matches!(
            IcmpMessage::parse(&wire).unwrap_err(),
            PacketError::BadChecksum { .. }
        ));
    }

    #[test]
    fn parse_rejects_short() {
        assert!(matches!(
            IcmpMessage::parse(&[8, 0, 0]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    #[test]
    fn parse_rejects_unknown_type() {
        // Type 13 (timestamp) with a valid checksum.
        let mut buf = BytesMut::new();
        buf.put_u8(13);
        buf.put_u8(0);
        buf.put_u16(0);
        buf.put_u32(0);
        let ck = checksum::internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpMessage::parse(&buf).unwrap_err(),
            PacketError::UnknownIcmpType(13)
        ));
    }
}
