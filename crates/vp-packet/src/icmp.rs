//! ICMP echo messages — the probe currency of Verfploeter.
//!
//! The prober sends Echo Requests whose identifier encodes the measurement
//! round ("a unique identifier in the ICMP header was used in every
//! measurement round to ensure data set separation", §4.2) and whose
//! sequence number indexes the hitlist entry. Replies echo both back, which
//! is how the collector pairs replies with probes and drops foreign traffic.

use bytes::{BufMut, Bytes, BytesMut};

use crate::checksum;
use crate::error::PacketError;

const ECHO_REPLY: u8 = 0;
const DEST_UNREACHABLE: u8 = 3;
const ECHO_REQUEST: u8 = 8;
const MIN_LEN: usize = 8;

/// The ICMP messages the simulator models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    EchoRequest {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    EchoReply {
        ident: u16,
        seq: u16,
        payload: Bytes,
    },
    /// Destination unreachable, carrying the offending header bytes.
    DestUnreachable { code: u8, original: Bytes },
}

impl IcmpMessage {
    /// Convenience constructor for a probe.
    pub fn echo_request(ident: u16, seq: u16, payload: Bytes) -> Self {
        IcmpMessage::EchoRequest {
            ident,
            seq,
            payload,
        }
    }

    /// The reply a well-behaved host sends to this message, if any.
    pub fn reply(&self) -> Option<IcmpMessage> {
        match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => Some(IcmpMessage::EchoReply {
                ident: *ident,
                seq: *seq,
                payload: payload.clone(),
            }),
            _ => None,
        }
    }

    /// The echo identifier, if this is an echo message.
    pub fn ident(&self) -> Option<u16> {
        match self {
            IcmpMessage::EchoRequest { ident, .. } | IcmpMessage::EchoReply { ident, .. } => {
                Some(*ident)
            }
            IcmpMessage::DestUnreachable { .. } => None,
        }
    }

    /// The echo sequence number, if this is an echo message.
    pub fn seq(&self) -> Option<u16> {
        match self {
            IcmpMessage::EchoRequest { seq, .. } | IcmpMessage::EchoReply { seq, .. } => Some(*seq),
            IcmpMessage::DestUnreachable { .. } => None,
        }
    }

    /// Serializes to wire bytes with a correct ICMP checksum.
    pub fn emit(&self) -> Bytes {
        let body_len = match self {
            IcmpMessage::EchoRequest { payload, .. } | IcmpMessage::EchoReply { payload, .. } => {
                payload.len()
            }
            IcmpMessage::DestUnreachable { original, .. } => original.len(),
        };
        let mut buf = BytesMut::with_capacity(MIN_LEN + body_len);
        self.emit_into(&mut buf);
        buf.freeze()
    }

    /// Serializes this message into `out` (wire-identical to [`emit`],
    /// without allocating): the workhorse behind [`encode_batch`].
    ///
    /// [`emit`]: IcmpMessage::emit
    fn emit_into(&self, out: &mut BytesMut) {
        let (ty, code, a, b, body): (u8, u8, u16, u16, &Bytes) = match self {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => (ECHO_REQUEST, 0, *ident, *seq, payload),
            IcmpMessage::EchoReply {
                ident,
                seq,
                payload,
            } => (ECHO_REPLY, 0, *ident, *seq, payload),
            IcmpMessage::DestUnreachable { code, original } => {
                (DEST_UNREACHABLE, *code, 0, 0, original)
            }
        };
        let base = out.len();
        out.put_u8(ty);
        out.put_u8(code);
        out.put_u16(0); // checksum placeholder
        out.put_u16(a);
        out.put_u16(b);
        out.extend_from_slice(body); // vp-lint: allow(p1): appends into the caller's buffer — pre-sized by encode_batch on the batched path.
        let ck = checksum::internet_checksum(&out[base..]); // vp-lint: allow(g1): `base` was `out.len()` before the writes just above.
        out[base + 2..base + 4].copy_from_slice(&ck.to_be_bytes()); // vp-lint: allow(g1): the 8 fixed header bytes from `base` were written just above.
    }

    /// Parses wire bytes, validating length, checksum and message type.
    /// The body is copied into owned storage; on per-reply paths prefer
    /// [`IcmpMessage::parse_view`], which shares the backing buffer.
    // vp-lint: allow(g1, p1): the body slice starts at the MIN_LEN prefix the length check guarantees, and the copy is the owned-parse product — a control-path convenience; hot paths go through parse_view.
    pub fn parse(data: &[u8]) -> Result<IcmpMessage, PacketError> {
        if data.len() < MIN_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_LEN,
                got: data.len(),
            });
        }
        Self::parse_as(data, Bytes::copy_from_slice(&data[MIN_LEN..]))
    }

    /// Zero-copy twin of [`parse`]: identical validation and result, but
    /// the returned message's body is a refcounted view of `data`'s
    /// backing buffer — no allocation per parse, which is what lets the
    /// engine's per-reply receive path run allocation-free (rule p1; the
    /// allocation-witness test counts it).
    ///
    /// [`parse`]: IcmpMessage::parse
    pub fn parse_view(data: &Bytes) -> Result<IcmpMessage, PacketError> {
        if data.len() < MIN_LEN {
            return Err(PacketError::Truncated {
                needed: MIN_LEN,
                got: data.len(),
            });
        }
        Self::parse_as(data, data.slice(MIN_LEN..data.len()))
    }

    /// Shared parse tail. `data` is the full message (length already
    /// checked >= MIN_LEN); `body` must view/copy exactly
    /// `data[MIN_LEN..]`.
    // vp-lint: allow(g1): every index reads inside the MIN_LEN prefix both callers check first.
    fn parse_as(data: &[u8], body: Bytes) -> Result<IcmpMessage, PacketError> {
        if !checksum::verify(data) {
            let got = u16::from_be_bytes([data[2], data[3]]);
            return Err(PacketError::BadChecksum { expected: 0, got });
        }
        let ty = data[0];
        let code = data[1];
        let a = u16::from_be_bytes([data[4], data[5]]);
        let b = u16::from_be_bytes([data[6], data[7]]);
        match ty {
            ECHO_REQUEST => Ok(IcmpMessage::EchoRequest {
                ident: a,
                seq: b,
                payload: body,
            }),
            ECHO_REPLY => Ok(IcmpMessage::EchoReply {
                ident: a,
                seq: b,
                payload: body,
            }),
            DEST_UNREACHABLE => Ok(IcmpMessage::DestUnreachable {
                code,
                original: body,
            }),
            other => Err(PacketError::UnknownIcmpType(other)),
        }
    }
}

/// Encodes a batch of `count` echo requests — all tagged `ident`, all
/// carrying `payload_len`-byte payloads — into **one shared buffer**,
/// handing each message's wire image to `emit` as a zero-copy view.
///
/// For message `i`, `fill(i, &mut seq, payload)` sets the sequence
/// number and the payload bytes in place (the payload starts zeroed).
/// Each wire image is byte-identical to
/// `IcmpMessage::echo_request(ident, seq, payload).emit()`, but the cost
/// profile is the hot-loop one: a single buffer allocation per batch
/// instead of one (plus a copy) per probe, and the checksum of message
/// `i > 0` derived from message `i-1` via
/// [`checksum::incremental_update`] over only the words that changed —
/// the fixed header and payload template words are never re-summed.
///
/// The exactness of the incremental chain rests on the type byte
/// (`ECHO_REQUEST = 8`) keeping every message's word sum nonzero; see
/// [`checksum::incremental_update`].
pub fn encode_batch<F, E>(ident: u16, payload_len: usize, count: usize, mut fill: F, mut emit: E)
where
    F: FnMut(usize, &mut u16, &mut [u8]),
    E: FnMut(usize, Bytes),
{
    let msg_len = MIN_LEN + payload_len;
    let (frozen, _checksums) = encode_requests(ident, payload_len, count, &mut fill);
    for i in 0..count {
        emit(i, frozen.slice(i * msg_len..(i + 1) * msg_len));
    }
}

/// [`encode_batch`] plus each request's **echo reply** wire image, encoded
/// into a second shared buffer: `emit(i, request, reply)` where `reply` is
/// byte-identical to `request`'s parsed message run through
/// [`IcmpMessage::reply`] and [`IcmpMessage::emit`] (the equivalence tests
/// pin this). A reply differs from its request in exactly two words — the
/// type/code word and the checksum — so each reply image costs one copy
/// into the shared buffer and one [`checksum::incremental_update`], never
/// a per-message allocation or re-sum. Simulated responders then answer
/// probes by handing back the precomputed image instead of serializing a
/// fresh reply per probe (rule p1; the allocation witness counts this).
///
/// Exactness of the patched reply checksum needs at least one nonzero
/// word among ident/seq/payload (the reply's type byte is zero, so it no
/// longer anchors the sum — see [`checksum::incremental_update`]);
/// Verfploeter payloads always carry the nonzero magic tag, and a debug
/// assertion cross-checks every image against a full recompute.
// vp-lint: allow(g1): every index is inside `count * msg_len`, the exact length written into both buffers by construction.
pub fn encode_batch_with_replies<F, E>(
    ident: u16,
    payload_len: usize,
    count: usize,
    mut fill: F,
    mut emit: E,
) where
    F: FnMut(usize, &mut u16, &mut [u8]),
    E: FnMut(usize, Bytes, Bytes),
{
    const REQ_WORD0: u16 = (ECHO_REQUEST as u16) << 8;
    const REP_WORD0: u16 = (ECHO_REPLY as u16) << 8;
    let msg_len = MIN_LEN + payload_len;
    let (requests, checksums) = encode_requests(ident, payload_len, count, &mut fill);
    let mut replies = BytesMut::with_capacity(count * msg_len);
    for i in 0..count {
        let base = i * msg_len;
        replies.extend_from_slice(&requests[base..base + msg_len]);
        replies[base] = ECHO_REPLY;
        let rck = checksum::incremental_update(checksums[i], REQ_WORD0, REP_WORD0);
        debug_assert_eq!(
            rck,
            checksum::internet_checksum_parts(&[
                &replies[base..base + 2],
                &[0, 0],
                &replies[base + 4..base + msg_len],
            ]),
            "patched reply checksum diverged from a full recompute (message {i})"
        );
        replies[base + 2..base + 4].copy_from_slice(&rck.to_be_bytes());
    }
    let requests_frozen = requests;
    let replies_frozen = replies.freeze();
    for i in 0..count {
        emit(
            i,
            requests_frozen.slice(i * msg_len..(i + 1) * msg_len),
            replies_frozen.slice(i * msg_len..(i + 1) * msg_len),
        );
    }
}

/// The shared request encoder behind [`encode_batch`] and
/// [`encode_batch_with_replies`]: all `count` wire images in one buffer,
/// message `i > 0`'s checksum derived incrementally from message `i-1`'s
/// (see [`encode_batch`] for the cost and exactness contract). Returns
/// the frozen buffer plus the per-message checksums, which the reply
/// encoder patches into reply checksums.
// vp-lint: allow(g1): every index is inside `count * msg_len`, the exact length written into the buffer by construction.
fn encode_requests<F>(
    ident: u16,
    payload_len: usize,
    count: usize,
    fill: &mut F,
) -> (Bytes, Vec<u16>)
where
    F: FnMut(usize, &mut u16, &mut [u8]),
{
    const ZEROS: [u8; 64] = [0; 64];
    let msg_len = MIN_LEN + payload_len;
    let mut buf = BytesMut::with_capacity(count * msg_len);
    let mut checksums = Vec::with_capacity(count);
    let mut prev_ck = 0u16;
    for i in 0..count {
        let base = i * msg_len;
        buf.put_u8(ECHO_REQUEST);
        buf.put_u8(0); // code
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(ident);
        buf.put_u16(0); // seq placeholder
        let mut rem = payload_len;
        while rem > 0 {
            let take = rem.min(ZEROS.len());
            buf.extend_from_slice(&ZEROS[..take]);
            rem -= take;
        }
        let mut seq = 0u16;
        let msg = &mut buf[base..base + msg_len];
        fill(i, &mut seq, &mut msg[MIN_LEN..]);
        msg[6..8].copy_from_slice(&seq.to_be_bytes());
        let ck = if i == 0 {
            checksum::internet_checksum(&buf[base..base + msg_len])
        } else {
            // Only the seq word and payload words can differ between
            // consecutive messages; patch the previous checksum word by
            // word instead of re-summing the whole message.
            let mut ck = prev_ck;
            let mut at = 6;
            while at < msg_len {
                let old = word_at(&buf, base - msg_len + at, msg_len - at);
                let new = word_at(&buf, base + at, msg_len - at);
                if old != new {
                    ck = checksum::incremental_update(ck, old, new);
                }
                at += 2;
            }
            ck
        };
        buf[base + 2..base + 4].copy_from_slice(&ck.to_be_bytes());
        prev_ck = ck;
        checksums.push(ck);
    }
    (buf.freeze(), checksums)
}

/// The big-endian u16 at `off`, zero-padded when `remaining` is one —
/// the same odd-tail treatment RFC 1071 summing uses.
// vp-lint: allow(g1): callers pass offsets strictly inside the buffer they just wrote.
fn word_at(buf: &[u8], off: usize, remaining: usize) -> u16 {
    if remaining >= 2 {
        u16::from_be_bytes([buf[off], buf[off + 1]])
    } else {
        u16::from_be_bytes([buf[off], 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let m = IcmpMessage::echo_request(0x1234, 7, Bytes::from_static(b"verfploeter"));
        let wire = m.emit();
        assert_eq!(IcmpMessage::parse(&wire).unwrap(), m);
    }

    #[test]
    fn reply_roundtrip() {
        let m = IcmpMessage::EchoReply {
            ident: 9,
            seq: 65535,
            payload: Bytes::new(),
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
    }

    #[test]
    fn unreachable_roundtrip() {
        let m = IcmpMessage::DestUnreachable {
            code: 1,
            original: Bytes::from_static(&[1, 2, 3, 4]),
        };
        assert_eq!(IcmpMessage::parse(&m.emit()).unwrap(), m);
        assert_eq!(m.ident(), None);
        assert_eq!(m.seq(), None);
    }

    #[test]
    fn reply_mirrors_request_fields() {
        let req = IcmpMessage::echo_request(42, 1000, Bytes::from_static(b"x"));
        let rep = req.reply().unwrap();
        assert_eq!(rep.ident(), Some(42));
        assert_eq!(rep.seq(), Some(1000));
        match rep {
            IcmpMessage::EchoReply { payload, .. } => assert_eq!(&payload[..], b"x"),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn replies_do_not_reply() {
        let rep = IcmpMessage::EchoReply {
            ident: 1,
            seq: 2,
            payload: Bytes::new(),
        };
        assert!(rep.reply().is_none());
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut wire = BytesMut::from(&IcmpMessage::echo_request(1, 2, Bytes::new()).emit()[..]);
        wire[4] ^= 0xff;
        assert!(matches!(
            IcmpMessage::parse(&wire).unwrap_err(),
            PacketError::BadChecksum { .. }
        ));
    }

    #[test]
    fn parse_rejects_short() {
        assert!(matches!(
            IcmpMessage::parse(&[8, 0, 0]).unwrap_err(),
            PacketError::Truncated { .. }
        ));
    }

    /// A tiny deterministic generator for the equivalence tests below
    /// (tests are exempt from the d2 entropy rule, but a seeded LCG keeps
    /// failures reproducible anyway).
    struct Lcg(u64);

    impl Lcg {
        fn next_u16(&mut self) -> u16 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 33) as u16
        }
        fn next_u8(&mut self) -> u8 {
            self.next_u16() as u8
        }
    }

    #[test]
    fn encode_batch_is_bit_identical_to_per_message_emit() {
        // Random probes across several payload lengths (including odd
        // tails and empty payloads): every batched wire image must match
        // the single-message encoder byte for byte.
        let mut rng = Lcg(0x5650_4c54);
        for payload_len in [0usize, 1, 7, 12, 13, 64, 65] {
            for count in [1usize, 2, 3, 17] {
                let mut seqs = Vec::with_capacity(count);
                let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(count);
                for _ in 0..count {
                    seqs.push(rng.next_u16());
                    payloads.push((0..payload_len).map(|_| rng.next_u8()).collect());
                }
                let ident = rng.next_u16();
                let mut batched: Vec<Bytes> = Vec::with_capacity(count);
                encode_batch(
                    ident,
                    payload_len,
                    count,
                    |i, seq, payload| {
                        *seq = seqs[i];
                        payload.copy_from_slice(&payloads[i]);
                    },
                    |_, wire| batched.push(wire),
                );
                assert_eq!(batched.len(), count);
                for i in 0..count {
                    let single = IcmpMessage::echo_request(
                        ident,
                        seqs[i],
                        Bytes::copy_from_slice(&payloads[i]),
                    )
                    .emit();
                    assert_eq!(
                        &batched[i][..],
                        &single[..],
                        "payload_len={payload_len} count={count} message {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn encode_batch_identical_consecutive_probes() {
        // Consecutive identical messages exercise the "no words changed"
        // path of the incremental chain.
        let mut wires = Vec::new();
        encode_batch(7, 4, 3, |_, seq, p| {
            *seq = 42;
            p.copy_from_slice(b"same");
        }, |_, w| wires.push(w));
        let reference = IcmpMessage::echo_request(7, 42, Bytes::from_static(b"same")).emit();
        for w in &wires {
            assert_eq!(&w[..], &reference[..]);
        }
    }

    #[test]
    fn encode_batch_messages_parse_and_verify() {
        let mut wires = Vec::new();
        encode_batch(0xbeef, 12, 5, |i, seq, p| {
            *seq = i as u16;
            p[..4].copy_from_slice(b"VPLT");
            p[4..].copy_from_slice(&(i as u64).to_be_bytes());
        }, |_, w| wires.push(w));
        for (i, w) in wires.iter().enumerate() {
            let parsed = IcmpMessage::parse(w).unwrap();
            assert_eq!(parsed.ident(), Some(0xbeef));
            assert_eq!(parsed.seq(), Some(i as u16));
        }
    }

    #[test]
    fn parse_view_matches_owned_parse() {
        // Same results (values and errors) on every shape the owned
        // parser handles, without copying the body out of the buffer.
        let messages = [
            IcmpMessage::echo_request(0x1234, 7, Bytes::from_static(b"verfploeter")),
            IcmpMessage::EchoReply {
                ident: 9,
                seq: 65535,
                payload: Bytes::new(),
            },
            IcmpMessage::DestUnreachable {
                code: 1,
                original: Bytes::from_static(&[1, 2, 3, 4]),
            },
        ];
        for m in &messages {
            let wire = m.emit();
            assert_eq!(IcmpMessage::parse_view(&wire).unwrap(), *m);
            assert_eq!(
                IcmpMessage::parse_view(&wire).unwrap(),
                IcmpMessage::parse(&wire).unwrap()
            );
        }
        // Error cases agree too.
        let short = Bytes::from_static(&[8, 0, 0]);
        assert!(matches!(
            IcmpMessage::parse_view(&short).unwrap_err(),
            PacketError::Truncated { .. }
        ));
        let mut corrupt = BytesMut::from(&messages[0].emit()[..]);
        corrupt[4] ^= 0xff;
        let corrupt = corrupt.freeze();
        assert!(matches!(
            IcmpMessage::parse_view(&corrupt).unwrap_err(),
            PacketError::BadChecksum { .. }
        ));
    }

    #[test]
    fn encode_batch_with_replies_matches_reference_encoders() {
        // Every batched request must match the single-message encoder and
        // every batched reply must match that request's parsed message run
        // through reply() + emit() — the §7 bit-equivalence contract of
        // the precomputed-reply fast path. Payloads carry a nonzero tag
        // byte (the documented precondition of the reply checksum patch).
        let mut rng = Lcg(0x5245_504c);
        for payload_len in [4usize, 7, 12, 13, 64, 65] {
            for count in [1usize, 2, 3, 17] {
                let mut seqs = Vec::with_capacity(count);
                let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(count);
                for _ in 0..count {
                    seqs.push(rng.next_u16());
                    let mut p: Vec<u8> = (0..payload_len).map(|_| rng.next_u8()).collect();
                    p[0] = 0x56; // nonzero word, per the documented precondition
                    payloads.push(p);
                }
                let ident = rng.next_u16();
                let mut batched: Vec<(Bytes, Bytes)> = Vec::with_capacity(count);
                encode_batch_with_replies(
                    ident,
                    payload_len,
                    count,
                    |i, seq, payload| {
                        *seq = seqs[i];
                        payload.copy_from_slice(&payloads[i]);
                    },
                    |_, request, reply| batched.push((request, reply)),
                );
                assert_eq!(batched.len(), count);
                for i in 0..count {
                    let single = IcmpMessage::echo_request(
                        ident,
                        seqs[i],
                        Bytes::copy_from_slice(&payloads[i]),
                    );
                    assert_eq!(
                        &batched[i].0[..],
                        &single.emit()[..],
                        "request: payload_len={payload_len} count={count} message {i}"
                    );
                    let reference_reply = single.reply().expect("requests reply").emit();
                    assert_eq!(
                        &batched[i].1[..],
                        &reference_reply[..],
                        "reply: payload_len={payload_len} count={count} message {i}"
                    );
                    // And the image round-trips through the parser as the
                    // reply message it claims to be.
                    match IcmpMessage::parse_view(&batched[i].1).unwrap() {
                        IcmpMessage::EchoReply { ident: id, seq, payload } => {
                            assert_eq!(id, ident);
                            assert_eq!(seq, seqs[i]);
                            assert_eq!(&payload[..], &payloads[i][..]);
                        }
                        other => panic!("expected reply image, parsed {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn parse_rejects_unknown_type() {
        // Type 13 (timestamp) with a valid checksum.
        let mut buf = BytesMut::new();
        buf.put_u8(13);
        buf.put_u8(0);
        buf.put_u16(0);
        buf.put_u32(0);
        let ck = checksum::internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpMessage::parse(&buf).unwrap_err(),
            PacketError::UnknownIcmpType(13)
        ));
    }
}
