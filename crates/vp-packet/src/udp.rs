//! UDP datagrams (carrier for the DNS substrate).

use bytes::{BufMut, Bytes, BytesMut};
use vp_net::Ipv4Addr;

use crate::checksum;
use crate::error::PacketError;

const HEADER_LEN: usize = 8;

/// A UDP datagram with an owned payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Bytes,
}

impl UdpDatagram {
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Serializes with the UDP checksum computed over the IPv4 pseudo-header
    /// (hence the address arguments).
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let len = HEADER_LEN + self.payload.len();
        assert!(len <= u16::MAX as usize, "payload too large for UDP");
        let mut buf = BytesMut::with_capacity(len);
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(len as u16);
        buf.put_u16(0); // checksum placeholder
        buf.extend_from_slice(&self.payload);
        let pseudo = pseudo_header(src, dst, len as u16);
        let mut ck = checksum::internet_checksum_parts(&[&pseudo, &buf]);
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        buf[6..8].copy_from_slice(&ck.to_be_bytes()); // vp-lint: allow(g1): buf begins with the 8 fixed header bytes written just above.
        buf.freeze()
    }

    /// Parses and validates length and (unless zero) checksum.
    // vp-lint: allow(g1, p1): every index is inside the HEADER_LEN prefix or the validated len range; chunk reads come from chunks_exact(2); the payload copy happens once per UDP delivery on the control path, not per probe.
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<UdpDatagram, PacketError> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < HEADER_LEN || len > data.len() {
            return Err(PacketError::BadTotalLen {
                field: len,
                buffer: data.len(),
            });
        }
        let wire_ck = u16::from_be_bytes([data[6], data[7]]);
        if wire_ck != 0 {
            let pseudo = pseudo_header(src, dst, len as u16);
            let mut total = 0u32;
            for part in [&pseudo[..], &data[..len]] {
                let mut chunks = part.chunks_exact(2);
                for w in &mut chunks {
                    total += u32::from(u16::from_be_bytes([w[0], w[1]]));
                }
                if let [last] = chunks.remainder() {
                    total += u32::from(u16::from_be_bytes([*last, 0]));
                }
            }
            let mut folded = total;
            while folded >> 16 != 0 {
                folded = (folded & 0xffff) + (folded >> 16);
            }
            if folded as u16 != 0xffff {
                return Err(PacketError::BadChecksum {
                    expected: 0,
                    got: wire_ck,
                });
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: Bytes::copy_from_slice(&data[HEADER_LEN..len]),
        })
    }
}

fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, udp_len: u16) -> [u8; 12] {
    let mut p = [0u8; 12];
    p[0..4].copy_from_slice(&src.0.to_be_bytes());
    p[4..8].copy_from_slice(&dst.0.to_be_bytes());
    p[9] = 17; // protocol
    p[10..12].copy_from_slice(&udp_len.to_be_bytes());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    #[test]
    fn roundtrip() {
        let d = UdpDatagram::new(5353, 53, Bytes::from_static(b"query"));
        let wire = d.emit(SRC, DST);
        assert_eq!(UdpDatagram::parse(&wire, SRC, DST).unwrap(), d);
    }

    #[test]
    fn checksum_binds_addresses() {
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"x"));
        let wire = d.emit(SRC, DST);
        // Same bytes, different pseudo-header => checksum failure.
        let other = Ipv4Addr::new(10, 0, 0, 99);
        assert!(matches!(
            UdpDatagram::parse(&wire, SRC, other).unwrap_err(),
            PacketError::BadChecksum { .. }
        ));
    }

    #[test]
    fn zero_checksum_skips_validation() {
        let d = UdpDatagram::new(1000, 2000, Bytes::from_static(b"nocheck"));
        let mut wire = BytesMut::from(&d.emit(SRC, DST)[..]);
        wire[6..8].copy_from_slice(&[0, 0]);
        let parsed = UdpDatagram::parse(&wire, SRC, DST).unwrap();
        assert_eq!(parsed.payload, d.payload);
    }

    #[test]
    fn rejects_truncated_and_bad_len() {
        assert!(matches!(
            UdpDatagram::parse(&[0; 4], SRC, DST).unwrap_err(),
            PacketError::Truncated { .. }
        ));
        let d = UdpDatagram::new(1, 2, Bytes::from_static(b"abc"));
        let mut wire = BytesMut::from(&d.emit(SRC, DST)[..]);
        wire[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(
            UdpDatagram::parse(&wire, SRC, DST).unwrap_err(),
            PacketError::BadTotalLen { .. }
        ));
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram::new(7, 8, Bytes::new());
        let wire = d.emit(SRC, DST);
        assert_eq!(wire.len(), 8);
        assert_eq!(UdpDatagram::parse(&wire, SRC, DST).unwrap(), d);
    }
}
