//! DNS messages, sufficient for anycast catchment measurement.
//!
//! The RIPE Atlas baseline identifies the responding anycast site the
//! traditional way (§3.1 of the paper): a TXT query for `hostname.bind` in
//! the CHAOS class, optionally with the EDNS0 NSID option (RFC 5001). This
//! module implements the subset of RFC 1035 needed for that and for the DNS
//! load substrate: names (with compression-pointer parsing), questions, and
//! A / TXT / OPT resource records.

use bytes::{BufMut, Bytes, BytesMut};
use vp_net::Ipv4Addr;

use crate::error::PacketError;

const MAX_NAME_LEN: usize = 255;
const MAX_LABEL_LEN: usize = 63;
/// Parser limit on compression-pointer hops (loop defense).
const MAX_POINTER_HOPS: usize = 32;

/// A DNS domain name, stored as its label sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DnsName {
    labels: Vec<String>,
}

impl DnsName {
    /// The root name (zero labels).
    pub fn root() -> Self {
        DnsName::default()
    }

    /// Parses a presentation-format name like `"hostname.bind"`.
    ///
    /// Empty string and `"."` mean the root. Labels are validated for
    /// length; content is taken as-is (no IDNA).
    pub fn from_str(s: &str) -> Result<Self, PacketError> {
        if s.is_empty() || s == "." {
            return Ok(DnsName::root());
        }
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        let mut labels = Vec::new();
        let mut total = 1; // trailing root byte
        for label in trimmed.split('.') {
            if label.is_empty() {
                return Err(PacketError::BadDnsName("empty label"));
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(PacketError::BadDnsName("label longer than 63 octets"));
            }
            total += label.len() + 1;
            labels.push(label.to_ascii_lowercase());
        }
        if total > MAX_NAME_LEN {
            return Err(PacketError::BadDnsName("name longer than 255 octets"));
        }
        Ok(DnsName { labels })
    }

    /// The labels of this name, top label last.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Wire-format encoding (uncompressed).
    fn emit(&self, buf: &mut BytesMut) {
        for label in &self.labels {
            buf.put_u8(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.put_u8(0);
    }

    /// Parses a wire-format name starting at `pos`, following compression
    /// pointers. Returns the name and the offset just past it in the
    /// *uncompressed* stream (i.e. past the first pointer or the root byte).
    // vp-lint: allow(p1): label parsing materializes the name once per CHAOS reply on the control path, not per probe.
    fn parse(data: &[u8], pos: usize) -> Result<(DnsName, usize), PacketError> {
        let mut labels = Vec::new();
        let mut cursor = pos;
        let mut end_of_encoding: Option<usize> = None;
        let mut hops = 0usize;
        let mut total = 1usize;
        loop {
            let len_byte = *data
                .get(cursor)
                .ok_or(PacketError::BadDnsName("name runs past buffer"))?;
            match len_byte {
                0 => {
                    let end = end_of_encoding.unwrap_or(cursor + 1);
                    return Ok((DnsName { labels }, end));
                }
                l if l & 0xc0 == 0xc0 => {
                    let second = *data
                        .get(cursor + 1)
                        .ok_or(PacketError::BadDnsName("pointer runs past buffer"))?;
                    if end_of_encoding.is_none() {
                        end_of_encoding = Some(cursor + 2);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(PacketError::BadDnsName("compression pointer loop"));
                    }
                    cursor = (((l & 0x3f) as usize) << 8) | second as usize;
                }
                l if (l as usize) <= MAX_LABEL_LEN => {
                    let start = cursor + 1;
                    let stop = start + l as usize;
                    let bytes = data
                        .get(start..stop)
                        .ok_or(PacketError::BadDnsName("label runs past buffer"))?;
                    total += l as usize + 1;
                    if total > MAX_NAME_LEN {
                        return Err(PacketError::BadDnsName("name longer than 255 octets"));
                    }
                    labels.push(String::from_utf8_lossy(bytes).to_ascii_lowercase());
                    cursor = stop;
                }
                _ => return Err(PacketError::BadDnsName("reserved label type")),
            }
        }
    }
}

impl std::fmt::Display for DnsName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

/// DNS record/query types this substrate models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsType {
    A,
    Ns,
    Txt,
    Opt,
    Other(u16),
}

impl DnsType {
    pub const fn number(self) -> u16 {
        match self {
            DnsType::A => 1,
            DnsType::Ns => 2,
            DnsType::Txt => 16,
            DnsType::Opt => 41,
            DnsType::Other(n) => n,
        }
    }
    pub const fn from_number(n: u16) -> Self {
        match n {
            1 => DnsType::A,
            2 => DnsType::Ns,
            16 => DnsType::Txt,
            41 => DnsType::Opt,
            other => DnsType::Other(other),
        }
    }
}

/// DNS classes; CHAOS is what `hostname.bind` queries use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsClass {
    In,
    Chaos,
    Other(u16),
}

impl DnsClass {
    pub const fn number(self) -> u16 {
        match self {
            DnsClass::In => 1,
            DnsClass::Chaos => 3,
            DnsClass::Other(n) => n,
        }
    }
    pub const fn from_number(n: u16) -> Self {
        match n {
            1 => DnsClass::In,
            3 => DnsClass::Chaos,
            other => DnsClass::Other(other),
        }
    }
}

/// Response codes (RFC 1035 §4.1.1 plus REFUSED).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    pub const fn number(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(n) => n,
        }
    }
    pub const fn from_number(n: u8) -> Self {
        match n {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flags (the subset the substrate uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DnsFlags {
    pub response: bool,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: Rcode,
}

impl Default for Rcode {
    fn default() -> Self {
        Rcode::NoError
    }
}

impl DnsFlags {
    fn emit(self) -> u16 {
        let mut w = 0u16;
        if self.response {
            w |= 1 << 15;
        }
        if self.authoritative {
            w |= 1 << 10;
        }
        if self.truncated {
            w |= 1 << 9;
        }
        if self.recursion_desired {
            w |= 1 << 8;
        }
        if self.recursion_available {
            w |= 1 << 7;
        }
        w |= self.rcode.number() as u16 & 0x0f;
        w
    }

    fn parse(w: u16) -> Self {
        DnsFlags {
            response: w & (1 << 15) != 0,
            authoritative: w & (1 << 10) != 0,
            truncated: w & (1 << 9) != 0,
            recursion_desired: w & (1 << 8) != 0,
            recursion_available: w & (1 << 7) != 0,
            rcode: Rcode::from_number((w & 0x0f) as u8),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsQuestion {
    pub name: DnsName,
    pub qtype: DnsType,
    pub qclass: DnsClass,
}

/// EDNS0 NSID option code (RFC 5001).
pub const EDNS_OPT_NSID: u16 = 3;

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsRecord {
    /// An address record.
    A { name: DnsName, ttl: u32, addr: Ipv4Addr },
    /// A TXT record (each string at most 255 bytes on the wire).
    Txt {
        name: DnsName,
        class: DnsClass,
        ttl: u32,
        strings: Vec<String>,
    },
    /// An EDNS0 OPT pseudo-record carrying options such as NSID.
    Opt {
        udp_payload_size: u16,
        options: Vec<(u16, Bytes)>,
    },
    /// Anything else, kept opaque.
    Other {
        name: DnsName,
        rtype: u16,
        class: u16,
        ttl: u32,
        rdata: Bytes,
    },
}

impl DnsRecord {
    /// The NSID payload if this is an OPT record carrying one.
    pub fn nsid(&self) -> Option<&Bytes> {
        match self {
            DnsRecord::Opt { options, .. } => options
                .iter()
                .find(|(code, _)| *code == EDNS_OPT_NSID)
                .map(|(_, data)| data),
            _ => None,
        }
    }

    fn emit(&self, buf: &mut BytesMut) {
        match self {
            DnsRecord::A { name, ttl, addr } => {
                name.emit(buf);
                buf.put_u16(DnsType::A.number());
                buf.put_u16(DnsClass::In.number());
                buf.put_u32(*ttl);
                buf.put_u16(4);
                buf.put_u32(addr.0);
            }
            DnsRecord::Txt {
                name,
                class,
                ttl,
                strings,
            } => {
                name.emit(buf);
                buf.put_u16(DnsType::Txt.number());
                buf.put_u16(class.number());
                buf.put_u32(*ttl);
                let rdlen: usize = strings.iter().map(|s| 1 + s.len().min(255)).sum();
                buf.put_u16(rdlen as u16);
                for s in strings {
                    let b = &s.as_bytes()[..s.len().min(255)]; // vp-lint: allow(g1): the slice end is min'ed with s.len(), always in bounds.
                    buf.put_u8(b.len() as u8);
                    buf.extend_from_slice(b);
                }
            }
            DnsRecord::Opt {
                udp_payload_size,
                options,
            } => {
                DnsName::root().emit(buf);
                buf.put_u16(DnsType::Opt.number());
                buf.put_u16(*udp_payload_size);
                buf.put_u32(0); // extended rcode/version/flags
                let rdlen: usize = options.iter().map(|(_, d)| 4 + d.len()).sum();
                buf.put_u16(rdlen as u16);
                for (code, data) in options {
                    buf.put_u16(*code);
                    buf.put_u16(data.len() as u16);
                    buf.extend_from_slice(data);
                }
            }
            DnsRecord::Other {
                name,
                rtype,
                class,
                ttl,
                rdata,
            } => {
                name.emit(buf);
                buf.put_u16(*rtype);
                buf.put_u16(*class);
                buf.put_u32(*ttl);
                buf.put_u16(rdata.len() as u16);
                buf.extend_from_slice(rdata);
            }
        }
    }

    // vp-lint: allow(p1): record parsing materializes rdata once per CHAOS reply on the control path, not per probe.
    fn parse(data: &[u8], pos: usize) -> Result<(DnsRecord, usize), PacketError> {
        let (name, mut cursor) = DnsName::parse(data, pos)?;
        let fixed = data
            .get(cursor..cursor + 10)
            .ok_or(PacketError::BadDns("record header runs past buffer"))?;
        let rtype = u16::from_be_bytes([fixed[0], fixed[1]]); // vp-lint: allow(g1): fixed is a get-checked 10-byte slice.
        let class = u16::from_be_bytes([fixed[2], fixed[3]]); // vp-lint: allow(g1): fixed is a get-checked 10-byte slice.
        let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]); // vp-lint: allow(g1): fixed is a get-checked 10-byte slice.
        let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize; // vp-lint: allow(g1): fixed is a get-checked 10-byte slice.
        cursor += 10;
        let rdata = data
            .get(cursor..cursor + rdlen)
            .ok_or(PacketError::BadDns("rdata runs past buffer"))?;
        let end = cursor + rdlen;
        let record = match DnsType::from_number(rtype) {
            DnsType::A if class == DnsClass::In.number() => {
                if rdlen != 4 {
                    return Err(PacketError::BadDns("A record rdata must be 4 bytes"));
                }
                DnsRecord::A {
                    name,
                    ttl,
                    addr: Ipv4Addr(u32::from_be_bytes([rdata[0], rdata[1], rdata[2], rdata[3]])), // vp-lint: allow(g1): rdata is a get-checked slice and rdlen == 4 was just verified.
                }
            }
            DnsType::Txt => {
                let mut strings = Vec::new();
                let mut p = 0usize;
                while p < rdlen {
                    let l = rdata[p] as usize; // vp-lint: allow(g1): the loop guard keeps p below rdlen, the length of rdata.
                    let s = rdata
                        .get(p + 1..p + 1 + l)
                        .ok_or(PacketError::BadDns("TXT string runs past rdata"))?;
                    strings.push(String::from_utf8_lossy(s).into_owned());
                    p += 1 + l;
                }
                DnsRecord::Txt {
                    name,
                    class: DnsClass::from_number(class),
                    ttl,
                    strings,
                }
            }
            DnsType::Opt => {
                let mut options = Vec::new();
                let mut p = 0usize;
                while p < rdlen {
                    let hdr = rdata
                        .get(p..p + 4)
                        .ok_or(PacketError::BadDns("OPT option header truncated"))?;
                    let code = u16::from_be_bytes([hdr[0], hdr[1]]); // vp-lint: allow(g1): hdr is a get-checked 4-byte slice.
                    let olen = u16::from_be_bytes([hdr[2], hdr[3]]) as usize; // vp-lint: allow(g1): hdr is a get-checked 4-byte slice.
                    let odata = rdata
                        .get(p + 4..p + 4 + olen)
                        .ok_or(PacketError::BadDns("OPT option data truncated"))?;
                    options.push((code, Bytes::copy_from_slice(odata)));
                    p += 4 + olen;
                }
                DnsRecord::Opt {
                    udp_payload_size: class,
                    options,
                }
            }
            _ => DnsRecord::Other {
                name,
                rtype,
                class,
                ttl,
                rdata: Bytes::copy_from_slice(rdata),
            },
        };
        Ok((record, end))
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnsMessage {
    pub id: u16,
    pub flags: DnsFlags,
    pub questions: Vec<DnsQuestion>,
    pub answers: Vec<DnsRecord>,
    pub additionals: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Builds the classic anycast site-identification query:
    /// `hostname.bind TXT CH`, optionally requesting NSID via EDNS0.
    pub fn hostname_bind_query(id: u16, with_nsid: bool) -> DnsMessage {
        let mut msg = DnsMessage {
            id,
            flags: DnsFlags::default(),
            questions: vec![DnsQuestion {
                // vp-lint: allow(h2): parsing a static, well-formed name literal.
                name: DnsName::from_str("hostname.bind").expect("static name is valid"),
                qtype: DnsType::Txt,
                qclass: DnsClass::Chaos,
            }],
            answers: Vec::new(),
            additionals: Vec::new(),
        };
        if with_nsid {
            msg.additionals.push(DnsRecord::Opt {
                udp_payload_size: 4096,
                options: vec![(EDNS_OPT_NSID, Bytes::new())],
            });
        }
        msg
    }

    /// Builds the server's response to a `hostname.bind` query, identifying
    /// the answering site by name (e.g. `"lax1a.b.root-servers.org"`).
    // vp-lint: allow(p1): builds one response message per CHAOS query; the site hostname itself is precomputed at service registration.
    pub fn hostname_bind_response(query: &DnsMessage, site_hostname: &str) -> DnsMessage {
        let name = query
            .questions
            .first()
            .map(|q| q.name.clone())
            .unwrap_or_default();
        let wants_nsid = query.additionals.iter().any(|r| r.nsid().is_some());
        let mut msg = DnsMessage {
            id: query.id,
            flags: DnsFlags {
                response: true,
                authoritative: true,
                ..DnsFlags::default()
            },
            questions: query.questions.clone(),
            answers: vec![DnsRecord::Txt {
                name,
                class: DnsClass::Chaos,
                ttl: 0,
                strings: vec![site_hostname.to_owned()],
            }],
            additionals: Vec::new(),
        };
        if wants_nsid {
            msg.additionals.push(DnsRecord::Opt {
                udp_payload_size: 4096,
                options: vec![(
                    EDNS_OPT_NSID,
                    Bytes::copy_from_slice(site_hostname.as_bytes()),
                )],
            });
        }
        msg
    }

    /// The first TXT answer string, if any — how a measurement client reads
    /// the site identity out of a `hostname.bind` response.
    pub fn first_txt(&self) -> Option<&str> {
        self.answers.iter().find_map(|r| match r {
            DnsRecord::Txt { strings, .. } => strings.first().map(String::as_str),
            _ => None,
        })
    }

    /// Serializes to wire format (no name compression on output).
    // vp-lint: allow(p3): each emitted name differs per question/record; the invariance heuristic cannot see through the `q.name` field projection.
    pub fn emit(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u16(self.id);
        buf.put_u16(self.flags.emit());
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(0); // authority records: unused by this substrate
        buf.put_u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.name.emit(&mut buf);
            buf.put_u16(q.qtype.number());
            buf.put_u16(q.qclass.number());
        }
        for r in &self.answers {
            r.emit(&mut buf);
        }
        for r in &self.additionals {
            r.emit(&mut buf);
        }
        buf.freeze()
    }

    /// Parses a wire-format message (handles compression pointers).
    pub fn parse(data: &[u8]) -> Result<DnsMessage, PacketError> {
        if data.len() < 12 {
            return Err(PacketError::Truncated {
                needed: 12,
                got: data.len(),
            });
        }
        // Total header reads: the length check above guarantees 12 bytes,
        // and `get` keeps the reads panic-free even if it did not.
        let be16 = |i: usize| -> u16 {
            match (data.get(2 * i), data.get(2 * i + 1)) {
                (Some(&hi), Some(&lo)) => u16::from_be_bytes([hi, lo]),
                _ => 0,
            }
        };
        let id = be16(0);
        let flags = DnsFlags::parse(be16(1));
        let qd = be16(2) as usize;
        let an = be16(3) as usize;
        let ns = be16(4) as usize;
        let ar = be16(5) as usize;
        let mut cursor = 12usize;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let (name, next) = DnsName::parse(data, cursor)?;
            let fixed = data
                .get(next..next + 4)
                .ok_or(PacketError::BadDns("question runs past buffer"))?;
            questions.push(DnsQuestion {
                name,
                qtype: DnsType::from_number(u16::from_be_bytes([fixed[0], fixed[1]])), // vp-lint: allow(g1): `fixed` is a get-checked 4-byte slice.
                qclass: DnsClass::from_number(u16::from_be_bytes([fixed[2], fixed[3]])), // vp-lint: allow(g1): `fixed` is a get-checked 4-byte slice.
            });
            cursor = next + 4;
        }
        let parse_section = |count: usize, cursor: &mut usize| {
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                let (r, next) = DnsRecord::parse(data, *cursor)?;
                records.push(r);
                *cursor = next;
            }
            Ok::<_, PacketError>(records)
        };
        let answers = parse_section(an, &mut cursor)?;
        let _authority = parse_section(ns, &mut cursor)?;
        let additionals = parse_section(ar, &mut cursor)?;
        Ok(DnsMessage {
            id,
            flags,
            questions,
            answers,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parse_display() {
        let n = DnsName::from_str("Hostname.BIND").unwrap();
        assert_eq!(n.to_string(), "hostname.bind");
        assert_eq!(n.labels().len(), 2);
        assert!(DnsName::from_str(".").unwrap().is_root());
        assert!(DnsName::from_str("").unwrap().is_root());
        assert_eq!(DnsName::from_str("example.org.").unwrap().to_string(), "example.org");
    }

    #[test]
    fn name_rejects_bad_labels() {
        let long = "a".repeat(64);
        assert!(DnsName::from_str(&long).is_err());
        assert!(DnsName::from_str("a..b").is_err());
        let too_long = vec!["abcdefgh"; 32].join(".");
        assert!(DnsName::from_str(&too_long).is_err());
    }

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::hostname_bind_query(0x77aa, false);
        let parsed = DnsMessage::parse(&q.emit()).unwrap();
        assert_eq!(parsed, q);
        assert_eq!(parsed.questions[0].qclass, DnsClass::Chaos);
        assert_eq!(parsed.questions[0].qtype, DnsType::Txt);
    }

    #[test]
    fn query_with_nsid_roundtrip() {
        let q = DnsMessage::hostname_bind_query(1, true);
        let parsed = DnsMessage::parse(&q.emit()).unwrap();
        assert_eq!(parsed, q);
        assert!(parsed.additionals[0].nsid().is_some());
    }

    #[test]
    fn response_roundtrip_and_txt_extraction() {
        let q = DnsMessage::hostname_bind_query(0xbeef, true);
        let r = DnsMessage::hostname_bind_response(&q, "mia1b.b.root-servers.org");
        let parsed = DnsMessage::parse(&r.emit()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.first_txt(), Some("mia1b.b.root-servers.org"));
        assert_eq!(parsed.id, 0xbeef);
        assert!(parsed.flags.response);
        // NSID echoed because the query asked for it.
        let nsid = parsed.additionals[0].nsid().unwrap();
        assert_eq!(&nsid[..], b"mia1b.b.root-servers.org");
    }

    #[test]
    fn response_without_nsid_when_not_requested() {
        let q = DnsMessage::hostname_bind_query(2, false);
        let r = DnsMessage::hostname_bind_response(&q, "site");
        assert!(r.additionals.is_empty());
    }

    #[test]
    fn a_record_roundtrip() {
        let msg = DnsMessage {
            id: 5,
            flags: DnsFlags {
                response: true,
                rcode: Rcode::NoError,
                ..DnsFlags::default()
            },
            questions: vec![],
            answers: vec![DnsRecord::A {
                name: DnsName::from_str("example.org").unwrap(),
                ttl: 3600,
                addr: Ipv4Addr::new(93, 184, 216, 34),
            }],
            additionals: vec![],
        };
        assert_eq!(DnsMessage::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn compression_pointer_parsing() {
        // Hand-build a response where the answer name is a pointer to the
        // question name (offset 12).
        let q = DnsMessage {
            id: 9,
            flags: DnsFlags::default(),
            questions: vec![DnsQuestion {
                name: DnsName::from_str("a.example").unwrap(),
                qtype: DnsType::A,
                qclass: DnsClass::In,
            }],
            answers: vec![],
            additionals: vec![],
        };
        let mut wire = BytesMut::from(&q.emit()[..]);
        // ancount = 1
        wire[6..8].copy_from_slice(&1u16.to_be_bytes());
        // answer: pointer to offset 12, type A, class IN, ttl 1, rdlen 4, addr
        wire.extend_from_slice(&[0xc0, 12]);
        wire.extend_from_slice(&1u16.to_be_bytes());
        wire.extend_from_slice(&1u16.to_be_bytes());
        wire.extend_from_slice(&1u32.to_be_bytes());
        wire.extend_from_slice(&4u16.to_be_bytes());
        wire.extend_from_slice(&[10, 0, 0, 1]);
        let parsed = DnsMessage::parse(&wire).unwrap();
        match &parsed.answers[0] {
            DnsRecord::A { name, addr, .. } => {
                assert_eq!(name.to_string(), "a.example");
                assert_eq!(*addr, Ipv4Addr::new(10, 0, 0, 1));
            }
            other => panic!("expected A record, got {other:?}"),
        }
    }

    #[test]
    fn pointer_loop_is_rejected() {
        // A name that is a pointer to itself.
        let mut wire = vec![0u8; 12];
        wire[4..6].copy_from_slice(&1u16.to_be_bytes()); // qdcount 1
        wire.extend_from_slice(&[0xc0, 12]); // pointer to offset 12 (itself)
        wire.extend_from_slice(&[0, 1, 0, 1]);
        assert!(matches!(
            DnsMessage::parse(&wire).unwrap_err(),
            PacketError::BadDnsName("compression pointer loop")
        ));
    }

    #[test]
    fn truncated_messages_rejected() {
        assert!(DnsMessage::parse(&[0; 5]).is_err());
        let q = DnsMessage::hostname_bind_query(1, false).emit();
        assert!(DnsMessage::parse(&q[..q.len() - 3]).is_err());
    }

    #[test]
    fn unknown_record_preserved() {
        let msg = DnsMessage {
            id: 1,
            flags: DnsFlags::default(),
            questions: vec![],
            answers: vec![DnsRecord::Other {
                name: DnsName::from_str("x.y").unwrap(),
                rtype: 99,
                class: 1,
                ttl: 60,
                rdata: Bytes::from_static(&[1, 2, 3]),
            }],
            additionals: vec![],
        };
        assert_eq!(DnsMessage::parse(&msg.emit()).unwrap(), msg);
    }

    #[test]
    fn rcode_numbers_roundtrip() {
        for n in 0..=15u8 {
            assert_eq!(Rcode::from_number(n).number(), n);
        }
    }
}
