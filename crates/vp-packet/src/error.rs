//! Parse/emit errors.

use std::fmt;

/// Errors from parsing untrusted packet bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than the format requires. Carries what was needed/got.
    Truncated { needed: usize, got: usize },
    /// IPv4 version field was not 4.
    BadVersion(u8),
    /// IPv4 IHL smaller than the 20-byte minimum header.
    BadHeaderLen(u8),
    /// A checksum did not verify.
    BadChecksum { expected: u16, got: u16 },
    /// The total-length field disagrees with the buffer.
    BadTotalLen { field: usize, buffer: usize },
    /// An ICMP type this implementation does not model.
    UnknownIcmpType(u8),
    /// A malformed DNS name (label too long, overall too long, or a bad
    /// compression pointer).
    BadDnsName(&'static str),
    /// DNS message structurally invalid.
    BadDns(&'static str),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            PacketError::BadVersion(v) => write!(f, "bad IP version {v}"),
            PacketError::BadHeaderLen(l) => write!(f, "bad IPv4 header length {l}"),
            PacketError::BadChecksum { expected, got } => {
                write!(f, "bad checksum: expected {expected:#06x}, got {got:#06x}")
            }
            PacketError::BadTotalLen { field, buffer } => {
                write!(f, "total length {field} does not fit buffer of {buffer}")
            }
            PacketError::UnknownIcmpType(t) => write!(f, "unsupported ICMP type {t}"),
            PacketError::BadDnsName(why) => write!(f, "bad DNS name: {why}"),
            PacketError::BadDns(why) => write!(f, "bad DNS message: {why}"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = PacketError::Truncated { needed: 20, got: 3 };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("3"));
        let e = PacketError::BadChecksum {
            expected: 0xbeef,
            got: 0xdead,
        };
        assert!(e.to_string().contains("0xbeef"));
    }
}
