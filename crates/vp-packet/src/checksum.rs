//! RFC 1071 Internet checksum.

/// Computes the Internet checksum (one's-complement sum folded to 16 bits,
/// then complemented) over `data`. An odd trailing byte is padded with zero,
/// per RFC 1071.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Computes the checksum over several slices as if concatenated.
///
/// Slices other than the last must have even length (true for all uses here:
/// pseudo-headers and fixed headers are even-sized).
pub fn internet_checksum_parts(parts: &[&[u8]]) -> u16 {
    let mut total: u32 = 0;
    for (i, part) in parts.iter().enumerate() {
        debug_assert!(
            i == parts.len() - 1 || part.len() % 2 == 0,
            "non-final checksum part must be even-length"
        );
        total += sum_words(part);
    }
    !fold(total)
}

/// Verifies data that includes its checksum field: the folded sum over the
/// whole buffer must be 0xffff (i.e. complement zero).
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xffff
}

/// Incrementally updates a checksum after one 16-bit word of the covered
/// data changed from `old_word` to `new_word` (RFC 1624, eqn. 3:
/// `HC' = ~(~HC + ~m + m')`).
///
/// Chaining updates over every changed word yields exactly the checksum a
/// full recompute would, **provided the covered data always contains at
/// least one nonzero word** (true for every packet here: an ICMP type or
/// IPv4 version byte is nonzero). Without that, the one's-complement
/// zero ambiguity (`0x0000` vs `0xffff`) could differ from a recompute
/// over all-zero data — the equivalence tests pin the exact-match
/// behaviour on real packets.
pub fn incremental_update(check: u16, old_word: u16, new_word: u16) -> u16 {
    !fold(u32::from(!check) + u32::from(!old_word) + u32::from(new_word))
}

/// The one's-complement running sum over `data` (not yet folded or
/// complemented). Batch encoders precompute this over a message's fixed
/// words once, then [`finish`] the sum plus the varying words per
/// message — associativity of the u32 word sum makes that exactly
/// [`internet_checksum`] over the assembled message.
///
/// Slices fed to a shared running sum must be even-length (same rule as
/// [`internet_checksum_parts`]).
pub fn partial_sum(data: &[u8]) -> u32 {
    sum_words(data)
}

/// Folds and complements a running sum built from [`partial_sum`] (plus
/// any manually added big-endian words) into the final checksum.
pub fn finish(sum: u32) -> u16 {
    !fold(sum)
}

fn sum_words(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x00001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_data_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 8]), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(internet_checksum(&[0xff]), !0xff00u16);
    }

    #[test]
    fn verify_accepts_packet_with_embedded_checksum() {
        // Build a tiny "header" with a checksum field at bytes 2..4.
        let mut buf = [0x45u8, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78];
        let ck = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&buf));
        buf[4] ^= 0xff;
        assert!(!verify(&buf));
    }

    #[test]
    fn parts_equal_concatenated() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7];
        let whole = [1u8, 2, 3, 4, 5, 6, 7];
        assert_eq!(
            internet_checksum_parts(&[&a, &b]),
            internet_checksum(&whole)
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(internet_checksum(&[]), 0xffff);
        assert_eq!(internet_checksum_parts(&[]), 0xffff);
    }

    #[test]
    fn incremental_update_matches_recompute_single_word() {
        // Patch each word of a packet in turn and compare against a full
        // recompute of the patched buffer.
        let base = [0x08u8, 0x00, 0x00, 0x00, 0x12, 0x34, 0xab, 0xcd];
        let ck = internet_checksum(&base);
        for word in 0..base.len() / 2 {
            if word == 1 {
                continue; // the checksum field itself is not covered
            }
            let mut patched = base;
            let new = [0xfeu8, 0x9a];
            patched[2 * word..2 * word + 2].copy_from_slice(&new);
            let old_w = u16::from_be_bytes([base[2 * word], base[2 * word + 1]]);
            let new_w = u16::from_be_bytes(new);
            assert_eq!(
                incremental_update(ck, old_w, new_w),
                internet_checksum(&patched),
                "word {word}"
            );
        }
    }

    #[test]
    fn incremental_update_chains_across_many_words() {
        // A deterministic LCG walk over packets: chain word updates from
        // each packet to the next and compare with full recomputes.
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u16
        };
        let mut buf = [0u8; 20];
        buf[0] = 0x08; // keep one word nonzero, the stated precondition
        let mut ck = internet_checksum(&buf);
        for _ in 0..200 {
            for word in [3usize, 6, 7, 8, 9] {
                let old_w = u16::from_be_bytes([buf[2 * word], buf[2 * word + 1]]);
                let new_w = next();
                buf[2 * word..2 * word + 2].copy_from_slice(&new_w.to_be_bytes());
                ck = incremental_update(ck, old_w, new_w);
            }
            assert_eq!(ck, internet_checksum(&buf));
        }
    }

    #[test]
    fn partial_sum_finish_matches_whole_checksum() {
        let data = [0x08u8, 0x00, 0x00, 0x00, 0x56, 0x50, 0x4c, 0x54, 0x01];
        let fixed = partial_sum(&data[..4]);
        let varying = partial_sum(&data[4..]);
        assert_eq!(finish(fixed + varying), internet_checksum(&data));
        // Manually added BE words are interchangeable with slices.
        assert_eq!(
            finish(fixed + 0x5650 + 0x4c54 + 0x0100),
            internet_checksum(&data)
        );
    }
}
