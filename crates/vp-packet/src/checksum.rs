//! RFC 1071 Internet checksum.

/// Computes the Internet checksum (one's-complement sum folded to 16 bits,
/// then complemented) over `data`. An odd trailing byte is padded with zero,
/// per RFC 1071.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data))
}

/// Computes the checksum over several slices as if concatenated.
///
/// Slices other than the last must have even length (true for all uses here:
/// pseudo-headers and fixed headers are even-sized).
pub fn internet_checksum_parts(parts: &[&[u8]]) -> u16 {
    let mut total: u32 = 0;
    for (i, part) in parts.iter().enumerate() {
        debug_assert!(
            i == parts.len() - 1 || part.len() % 2 == 0,
            "non-final checksum part must be even-length"
        );
        total += sum_words(part);
    }
    !fold(total)
}

/// Verifies data that includes its checksum field: the folded sum over the
/// whole buffer must be 0xffff (i.e. complement zero).
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data)) == 0xffff
}

fn sum_words(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        sum += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

fn fold(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x00001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold 0xddf2
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn zero_data_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[0u8; 8]), 0xffff);
    }

    #[test]
    fn odd_length_padded() {
        assert_eq!(internet_checksum(&[0xff]), !0xff00u16);
    }

    #[test]
    fn verify_accepts_packet_with_embedded_checksum() {
        // Build a tiny "header" with a checksum field at bytes 2..4.
        let mut buf = [0x45u8, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78];
        let ck = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&buf));
        buf[4] ^= 0xff;
        assert!(!verify(&buf));
    }

    #[test]
    fn parts_equal_concatenated() {
        let a = [1u8, 2, 3, 4];
        let b = [5u8, 6, 7];
        let whole = [1u8, 2, 3, 4, 5, 6, 7];
        assert_eq!(
            internet_checksum_parts(&[&a, &b]),
            internet_checksum(&whole)
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(internet_checksum(&[]), 0xffff);
        assert_eq!(internet_checksum_parts(&[]), 0xffff);
    }
}
