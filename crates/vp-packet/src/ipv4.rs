//! IPv4 packets: a 20-byte header (no options) plus an owned payload.

use bytes::{BufMut, Bytes, BytesMut};
use vp_net::Ipv4Addr;

use crate::checksum;
use crate::error::PacketError;

/// IPv4 header length used by this implementation (no options).
pub const HEADER_LEN: usize = 20;

/// Default TTL for emitted packets (matches common OS defaults).
pub const DEFAULT_TTL: u8 = 64;

/// The transport protocols the simulator carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Icmp,
    Udp,
    /// Anything else, preserved numerically so packets survive a round trip.
    Other(u8),
}

impl Protocol {
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    pub const fn from_number(n: u8) -> Self {
        match n {
            1 => Protocol::Icmp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

/// A parsed (or to-be-emitted) IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: Protocol,
    pub ttl: u8,
    /// Identification field; the prober varies this per measurement round.
    pub ident: u16,
    pub payload: Bytes,
}

impl Ipv4Packet {
    /// Builds a packet with default TTL and zero identification.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: Protocol, payload: Bytes) -> Self {
        Ipv4Packet {
            src,
            dst,
            protocol,
            ttl: DEFAULT_TTL,
            ident: 0,
            payload,
        }
    }

    /// Serializes to wire bytes with a correct header checksum.
    pub fn emit(&self) -> Bytes {
        let total_len = HEADER_LEN + self.payload.len();
        assert!(total_len <= u16::MAX as usize, "payload too large for IPv4");
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(self.ident);
        buf.put_u16(0x4000); // flags: DF, fragment offset 0
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol.number());
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        let ck = checksum::internet_checksum(&buf[..HEADER_LEN]); // vp-lint: allow(g1): the 20 header bytes were written just above; HEADER_LEN is their length.
        buf[10..12].copy_from_slice(&ck.to_be_bytes()); // vp-lint: allow(g1): buf holds the 20 fixed header bytes written just above.
        buf.extend_from_slice(&self.payload);
        buf.freeze()
    }

    /// Parses wire bytes, validating version, header length, total length
    /// and the header checksum.
    // vp-lint: allow(g1): every index reads inside the HEADER_LEN prefix (or the validated ihl range) whose presence the guards above it establish.
    pub fn parse(data: &[u8]) -> Result<Ipv4Packet, PacketError> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated {
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion(version));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < HEADER_LEN {
            return Err(PacketError::BadHeaderLen(data[0] & 0x0f));
        }
        if data.len() < ihl {
            return Err(PacketError::Truncated {
                needed: ihl,
                got: data.len(),
            });
        }
        if !checksum::verify(&data[..ihl]) {
            let got = u16::from_be_bytes([data[10], data[11]]);
            return Err(PacketError::BadChecksum { expected: 0, got });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || total_len > data.len() {
            return Err(PacketError::BadTotalLen {
                field: total_len,
                buffer: data.len(),
            });
        }
        Ok(Ipv4Packet {
            src: Ipv4Addr(u32::from_be_bytes([data[12], data[13], data[14], data[15]])),
            dst: Ipv4Addr(u32::from_be_bytes([data[16], data[17], data[18], data[19]])),
            protocol: Protocol::from_number(data[9]),
            ttl: data[8],
            ident: u16::from_be_bytes([data[4], data[5]]),
            payload: Bytes::copy_from_slice(&data[ihl..total_len]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(192, 0, 2, 1),
            dst: Ipv4Addr::new(198, 51, 100, 2),
            protocol: Protocol::Icmp,
            ttl: 61,
            ident: 0xabcd,
            payload: Bytes::from_static(b"hello"),
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let p = sample();
        let wire = p.emit();
        assert_eq!(wire.len(), HEADER_LEN + 5);
        let q = Ipv4Packet::parse(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn parse_rejects_truncated() {
        let wire = sample().emit();
        let e = Ipv4Packet::parse(&wire[..10]).unwrap_err();
        assert!(matches!(e, PacketError::Truncated { .. }));
    }

    #[test]
    fn parse_rejects_bad_version() {
        let mut wire = BytesMut::from(&sample().emit()[..]);
        wire[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::parse(&wire).unwrap_err(),
            PacketError::BadVersion(6)
        ));
    }

    #[test]
    fn parse_rejects_corrupted_header() {
        let mut wire = BytesMut::from(&sample().emit()[..]);
        wire[8] ^= 0x01; // flip a TTL bit; checksum now wrong
        assert!(matches!(
            Ipv4Packet::parse(&wire).unwrap_err(),
            PacketError::BadChecksum { .. }
        ));
    }

    #[test]
    fn parse_rejects_bad_total_len() {
        let mut wire = BytesMut::from(&sample().emit()[..]);
        // Claim a longer packet than the buffer and fix the checksum.
        wire[2..4].copy_from_slice(&1000u16.to_be_bytes());
        wire[10..12].copy_from_slice(&[0, 0]);
        let ck = checksum::internet_checksum(&wire[..HEADER_LEN]);
        wire[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::parse(&wire).unwrap_err(),
            PacketError::BadTotalLen { .. }
        ));
    }

    #[test]
    fn parse_ignores_trailing_padding() {
        // Ethernet-style padding after total_len must not end up in payload.
        let p = sample();
        let mut wire = BytesMut::from(&p.emit()[..]);
        wire.extend_from_slice(&[0u8; 14]);
        let q = Ipv4Packet::parse(&wire).unwrap();
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for n in 0..=255u8 {
            assert_eq!(Protocol::from_number(n).number(), n);
        }
        assert_eq!(Protocol::Icmp.number(), 1);
        assert_eq!(Protocol::Udp.number(), 17);
    }

    #[test]
    fn empty_payload_ok() {
        let mut p = sample();
        p.payload = Bytes::new();
        let q = Ipv4Packet::parse(&p.emit()).unwrap();
        assert!(q.payload.is_empty());
    }
}
