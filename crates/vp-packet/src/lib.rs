//! Wire formats used by the Verfploeter reproduction.
//!
//! Verfploeter's probes and the measurement traffic of the Atlas baseline
//! are real byte-level packets inside the simulator: the prober emits
//! IPv4+ICMP Echo Requests, passive VPs reply with Echo Replies, the Atlas
//! baseline sends DNS CHAOS `hostname.bind` TXT queries over UDP, and the
//! per-site collectors parse what arrives. Running the actual encoders and
//! decoders (rather than passing structs around) means the data-cleaning
//! pipeline confronts the same artifacts the paper cleans: duplicated
//! replies, replies from unexpected sources, foreign identifiers.
//!
//! Design follows the smoltcp school: each format has a checked parser that
//! never panics on untrusted bytes (returning [`PacketError`]) and an
//! emitter that always produces a valid packet, checksums included. Parsing
//! borrows nothing — messages own their payload via [`bytes::Bytes`] so they
//! can cross the collector's channels.

pub mod checksum;
pub mod dns;
pub mod error;
pub mod icmp;
pub mod ipv4;
pub mod udp;

pub use dns::{DnsClass, DnsFlags, DnsMessage, DnsName, DnsQuestion, DnsRecord, DnsType, Rcode};
pub use error::PacketError;
pub use icmp::IcmpMessage;
pub use ipv4::{Ipv4Packet, Protocol};
pub use udp::UdpDatagram;
