//! Vantage-point placement.

use rand::distributions::{Distribution, WeightedIndex};
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use vp_geo::CountryId;
use vp_net::{Block24, Ipv4Addr};
use vp_topology::Internet;

/// Panel construction parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtlasConfig {
    /// Total VPs to place (the paper considers 9807).
    pub num_vps: usize,
    /// Probability a VP is temporarily down during a scan (455/9807 ≈ 4.6%).
    pub unavailable_prob: f64,
    pub seed: u64,
}

impl Default for AtlasConfig {
    fn default() -> Self {
        AtlasConfig {
            num_vps: 9807,
            unavailable_prob: 455.0 / 9807.0,
            seed: 0xa71a5,
        }
    }
}

impl AtlasConfig {
    /// A small panel for unit tests.
    pub fn tiny(seed: u64) -> Self {
        AtlasConfig {
            num_vps: 300,
            unavailable_prob: 0.05,
            seed,
        }
    }
}

/// One vantage point: a physical probe in some block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtlasVp {
    pub id: u32,
    pub block: Block24,
    /// The VP's source address (the block's live host).
    pub addr: Ipv4Addr,
    pub country: CountryId,
    /// Whether the VP responds during scans (down VPs are "considered" but
    /// "non-responding" in Table 4's accounting).
    pub available: bool,
}

/// A placed panel of vantage points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtlasPanel {
    vps: Vec<AtlasVp>,
}

impl AtlasPanel {
    /// Places VPs over a world: blocks are sampled with probability
    /// proportional to their country's `atlas_weight` (normalized by the
    /// country's block count), so the panel is Europe-heavy and nearly
    /// absent from China regardless of where the blocks are. Several VPs
    /// may share a block, as on the real platform.
    ///
    /// # Panics
    /// Panics if the world has no locatable blocks or `num_vps` is 0 or
    /// above `u16::MAX` (scan query IDs are 16-bit).
    pub fn place(world: &Internet, cfg: &AtlasConfig) -> AtlasPanel {
        assert!(cfg.num_vps > 0, "empty panel");
        assert!(
            cfg.num_vps <= u16::MAX as usize,
            "panel too large for 16-bit query ids"
        );
        let mut rng = Pcg64::seed_from_u64(cfg.seed);

        // Per-block weight: country atlas weight spread over the country's
        // blocks.
        let mut country_block_count = vec![0u32; vp_geo::countries().len()];
        let located: Vec<(usize, CountryId)> = world
            .blocks
            .iter()
            .enumerate()
            .filter_map(|(i, b)| world.geodb.locate(b.block).map(|loc| (i, loc.country)))
            .collect();
        assert!(!located.is_empty(), "no locatable blocks");
        for (_, c) in &located {
            country_block_count[c.index()] += 1;
        }
        let weights: Vec<f64> = located
            .iter()
            .map(|(i, c)| {
                let w = c.get().atlas_weight / country_block_count[c.index()].max(1) as f64;
                // Atlas probes sit in well-connected networks, which are
                // mostly ping-responsive — this drives the paper's ~77%
                // overlap between Atlas blocks and Verfploeter blocks.
                if world.blocks[*i].responsive {
                    w
                } else {
                    w * 0.2
                }
            })
            .collect();
        // vp-lint: allow(h2): weights derive from the static country table and are positive.
        let dist = WeightedIndex::new(&weights).expect("positive weights");

        let vps = (0..cfg.num_vps)
            .map(|id| {
                let (block_idx, country) = located[dist.sample(&mut rng)];
                let info = &world.blocks[block_idx];
                AtlasVp {
                    id: id as u32,
                    block: info.block,
                    addr: info.representative(),
                    country,
                    available: !rng.gen_bool(cfg.unavailable_prob),
                }
            })
            .collect();
        AtlasPanel { vps }
    }

    pub fn len(&self) -> usize {
        self.vps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vps.is_empty()
    }

    pub fn vps(&self) -> &[AtlasVp] {
        &self.vps
    }

    /// Number of distinct blocks hosting at least one VP.
    pub fn distinct_blocks(&self) -> usize {
        let mut blocks: Vec<Block24> = self.vps.iter().map(|v| v.block).collect();
        blocks.sort();
        blocks.dedup();
        blocks.len()
    }

    /// Number of available VPs.
    pub fn available(&self) -> usize {
        self.vps.iter().filter(|v| v.available).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_geo::Continent;
    use vp_topology::TopologyConfig;

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(41))
    }

    #[test]
    fn panel_size_and_availability() {
        let w = world();
        let cfg = AtlasConfig::tiny(1);
        let p = AtlasPanel::place(&w, &cfg);
        assert_eq!(p.len(), 300);
        let avail = p.available();
        assert!(avail > 250 && avail < 300, "availability {avail}");
        assert!(p.distinct_blocks() <= p.len());
    }

    #[test]
    fn placement_is_europe_heavy() {
        let w = world();
        let p = AtlasPanel::place(&w, &AtlasConfig::tiny(2));
        let eu = p
            .vps()
            .iter()
            .filter(|v| v.country.get().continent == Continent::Europe)
            .count();
        // Europe holds ~60% of atlas weight but far less of the block
        // population; the panel must skew European.
        assert!(
            eu as f64 / p.len() as f64 > 0.4,
            "only {eu}/{} VPs in Europe",
            p.len()
        );
    }

    #[test]
    fn vps_sit_in_populated_blocks_at_live_addresses() {
        let w = world();
        let p = AtlasPanel::place(&w, &AtlasConfig::tiny(3));
        for vp in p.vps() {
            let info = w.block(vp.block).expect("VP in populated block");
            assert_eq!(vp.addr, info.representative());
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let w = world();
        let a = AtlasPanel::place(&w, &AtlasConfig::tiny(4));
        let b = AtlasPanel::place(&w, &AtlasConfig::tiny(4));
        assert_eq!(a.vps(), b.vps());
        let c = AtlasPanel::place(&w, &AtlasConfig::tiny(5));
        assert_ne!(a.vps(), c.vps());
    }

    #[test]
    #[should_panic(expected = "empty panel")]
    fn zero_vps_panics() {
        let w = world();
        AtlasPanel::place(
            &w,
            &AtlasConfig {
                num_vps: 0,
                ..AtlasConfig::default()
            },
        );
    }
}
