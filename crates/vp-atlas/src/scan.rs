//! Running an Atlas measurement through the simulator.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_bgp::{Announcement, SiteId};
use vp_net::{Block24, SimDuration, SimTime};
use vp_packet::{DnsMessage, Ipv4Packet, Protocol, UdpDatagram};
use vp_sim::{CatchmentOracle, FaultConfig, NetworkSim};
use vp_topology::Internet;

use crate::panel::AtlasPanel;

/// One VP's measurement outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VpOutcome {
    pub vp: u32,
    pub block: Block24,
    /// The site the VP's query reached, `None` if no (usable) answer came
    /// back.
    pub site: Option<SiteId>,
}

/// The decoded result of one Atlas scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtlasResult {
    /// Dataset tag, e.g. "SBA-5-15".
    pub name: String,
    pub outcomes: Vec<VpOutcome>,
}

impl AtlasResult {
    /// VPs considered (the whole panel).
    pub fn vps_considered(&self) -> usize {
        self.outcomes.len()
    }

    /// VPs that returned a catchment observation.
    pub fn vps_responding(&self) -> usize {
        self.outcomes.iter().filter(|o| o.site.is_some()).count()
    }

    /// Distinct blocks with at least one VP considered.
    pub fn blocks_considered(&self) -> usize {
        let mut v: Vec<Block24> = self.outcomes.iter().map(|o| o.block).collect();
        v.sort();
        v.dedup();
        v.len()
    }

    /// Distinct blocks with at least one responding VP.
    pub fn blocks_responding(&self) -> usize {
        let mut v: Vec<Block24> = self
            .outcomes
            .iter()
            .filter(|o| o.site.is_some())
            .map(|o| o.block)
            .collect();
        v.sort();
        v.dedup();
        v.len()
    }

    /// Responding VPs per site.
    pub fn site_counts(&self) -> BTreeMap<SiteId, usize> {
        let mut m = BTreeMap::new();
        for o in &self.outcomes {
            if let Some(s) = o.site {
                *m.entry(s).or_insert(0) += 1;
            }
        }
        m
    }

    /// Fraction of responding VPs mapped to `site`.
    pub fn fraction_to(&self, site: SiteId) -> f64 {
        let responding = self.vps_responding();
        if responding == 0 {
            return 0.0;
        }
        let hits = self
            .outcomes
            .iter()
            .filter(|o| o.site == Some(site))
            .count();
        hits as f64 / responding as f64
    }

    /// The per-block catchment map this scan implies: a block maps to the
    /// site its VPs saw (ties broken toward the most common observation).
    pub fn block_catchments(&self) -> BTreeMap<Block24, SiteId> {
        let mut votes: BTreeMap<Block24, BTreeMap<SiteId, usize>> = BTreeMap::new();
        for o in &self.outcomes {
            if let Some(s) = o.site {
                *votes.entry(o.block).or_default().entry(s).or_insert(0) += 1;
            }
        }
        votes
            .into_iter()
            .filter_map(|(b, v)| {
                let (site, _) = v
                    .into_iter()
                    .max_by_key(|&(s, n)| (n, std::cmp::Reverse(s)))?;
                Some((b, site))
            })
            .collect()
    }
}

/// Runs one Atlas scan: every available VP sends a CHAOS `hostname.bind`
/// TXT query to the service address; replies are decoded from the TXT
/// payload (the site's hostname), as on the real platform.
///
/// Queries are spread uniformly over `duration` (the paper's Atlas scans
/// take 8–10 minutes).
pub fn run_scan(
    world: &Internet,
    panel: &AtlasPanel,
    announcement: &Announcement,
    oracle: Box<dyn CatchmentOracle>,
    faults: FaultConfig,
    start: SimTime,
    duration: SimDuration,
    name: &str,
    sim_seed: u64,
) -> AtlasResult {
    let mut sim = NetworkSim::new(world, faults, sim_seed);
    let svc = sim.register_service(announcement.clone(), oracle, true);
    let anycast = announcement.measurement_addr();

    let available: Vec<_> = panel.vps().iter().filter(|v| v.available).collect();
    let step = if available.is_empty() {
        SimDuration::ZERO
    } else {
        SimDuration(duration.0 / available.len() as u64)
    };
    for (i, vp) in available.iter().enumerate() {
        let at = start + step.saturating_mul(i as u64);
        let query = DnsMessage::hostname_bind_query(vp.id as u16, true);
        let udp = UdpDatagram::new(33000 + (vp.id % 16384) as u16, 53, query.emit());
        let pkt = Ipv4Packet::new(vp.addr, anycast, Protocol::Udp, udp.emit(vp.addr, anycast));
        sim.send_at(at, pkt);
    }
    sim.run();

    // Decode answers: match replies to VPs by DNS query id, map the TXT
    // hostname back to a site name.
    let hostname_to_site: BTreeMap<String, SiteId> = announcement
        .sites
        .iter()
        .map(|s| (NetworkSim::site_hostname(svc, &s.name), s.id))
        .collect();
    let mut answered: BTreeMap<u16, SiteId> = BTreeMap::new();
    for d in sim.host_deliveries() {
        if d.packet.protocol != Protocol::Udp {
            continue;
        }
        let Ok(udp) = UdpDatagram::parse(&d.packet.payload, d.packet.src, d.packet.dst) else {
            continue;
        };
        let Ok(msg) = DnsMessage::parse(&udp.payload) else {
            continue;
        };
        if !msg.flags.response {
            continue;
        }
        let Some(txt) = msg.first_txt() else { continue };
        if let Some(site) = hostname_to_site.get(txt) {
            answered.entry(msg.id).or_insert(*site);
        }
    }

    let outcomes = panel
        .vps()
        .iter()
        .map(|vp| VpOutcome {
            vp: vp.id,
            block: vp.block,
            site: if vp.available {
                answered.get(&(vp.id as u16)).copied()
            } else {
                None
            },
        })
        .collect();
    AtlasResult {
        name: name.to_owned(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panel::AtlasConfig;
    use vp_sim::{Scenario, StaticOracle};
    use vp_topology::TopologyConfig;

    fn setup() -> (Scenario, AtlasPanel) {
        let s = Scenario::broot(TopologyConfig::tiny(51), 7);
        let panel = AtlasPanel::place(&s.world, &AtlasConfig::tiny(1));
        (s, panel)
    }

    #[test]
    fn scan_maps_available_vps_to_their_catchment() {
        let (s, panel) = setup();
        let table = s.routing();
        let result = run_scan(
            &s.world,
            &panel,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            FaultConfig::none(),
            SimTime::ZERO,
            SimDuration::from_mins(8),
            "SBA-TEST",
            1,
        );
        assert_eq!(result.vps_considered(), panel.len());
        assert_eq!(result.vps_responding(), panel.available());
        // Every responding VP observed exactly its block's catchment.
        for o in result.outcomes.iter().filter(|o| o.site.is_some()) {
            let info = s.world.block(o.block).unwrap();
            assert_eq!(o.site, table.site_of_pop(info.pop));
        }
    }

    #[test]
    fn unavailable_vps_do_not_respond() {
        let (s, panel) = setup();
        let result = run_scan(
            &s.world,
            &panel,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            SimDuration::from_mins(8),
            "x",
            1,
        );
        for (vp, o) in panel.vps().iter().zip(&result.outcomes) {
            if !vp.available {
                assert_eq!(o.site, None);
            }
        }
    }

    #[test]
    fn fractions_sum_to_one_over_sites() {
        let (s, panel) = setup();
        let result = run_scan(
            &s.world,
            &panel,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            SimDuration::from_mins(8),
            "x",
            1,
        );
        let total: f64 = s
            .announcement
            .sites
            .iter()
            .map(|site| result.fraction_to(site.id))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to {total}");
        let counts = result.site_counts();
        assert_eq!(
            counts.values().sum::<usize>(),
            result.vps_responding()
        );
    }

    #[test]
    fn block_catchments_cover_responding_blocks() {
        let (s, panel) = setup();
        let result = run_scan(
            &s.world,
            &panel,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            SimDuration::from_mins(8),
            "x",
            1,
        );
        let map = result.block_catchments();
        assert_eq!(map.len(), result.blocks_responding());
    }

    #[test]
    fn loss_reduces_responses() {
        let (s, panel) = setup();
        let faults = FaultConfig {
            loss: 0.5,
            ..FaultConfig::none()
        };
        let result = run_scan(
            &s.world,
            &panel,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            faults,
            SimTime::ZERO,
            SimDuration::from_mins(8),
            "x",
            1,
        );
        assert!(result.vps_responding() < panel.available());
        assert!(result.vps_responding() > 0);
    }
}
