//! The RIPE Atlas baseline.
//!
//! The paper compares Verfploeter against "the largest studies we know of
//! \[which\] use between 9000 and 10000 VPs, all the active VPs in RIPE
//! Atlas" (§3.1). This crate reproduces that baseline over the simulated
//! world: a panel of physical vantage points whose geographic placement
//! follows the documented Atlas bias ("as a European project ... Atlas'
//! deployment is by far heavier in Europe than in other parts of the
//! globe", §5.4), each querying the anycast service with a CHAOS TXT
//! `hostname.bind` query (§3.1) and reading the answering site from the
//! reply payload — the opposite information flow from Verfploeter, where
//! the reply's *arrival site* is the signal.
//!
//! * [`panel`] — VP placement ([`AtlasPanel`]): blocks sampled by the
//!   country table's `atlas_weight`, some VPs temporarily unavailable
//!   (Table 4 counts 455 of 9807).
//! * [`scan`] — running a measurement ([`run_scan`]) through the
//!   discrete-event simulator and decoding the results ([`AtlasResult`]).

pub mod panel;
pub mod scan;

pub use panel::{AtlasConfig, AtlasPanel, AtlasVp};
pub use scan::{run_scan, AtlasResult, VpOutcome};
