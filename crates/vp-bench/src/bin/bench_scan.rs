//! Wall-clock baseline for the sharded scan engine: `BENCH_scan.json`.
//!
//! Runs the benchmark scan serially and at K ∈ {2, 4, 8} shards at one or
//! more hitlist scales (`--targets 15000,100000`), folds the per-rep wall
//! times into a [`vp_obs::Histogram`] (the same type the run reports use),
//! and writes median/p90 per (targets, K, threaded) to `BENCH_scan.json`
//! so future PRs have a perf trajectory to compare against (`vp-monitor
//! check-bench` gates on it). Sharded counts run twice: once on the
//! inline executor (`threaded: false` — the pure sharding overhead) and
//! once on OS threads via the blessed [`ShardExecutor`] (`threaded:
//! true`, workers = min(K, 8)). Every rep also cross-checks that the
//! sharded catchment map and metrics registry stay bit-identical to the
//! serial one — a benchmark of a wrong result would be worse than no
//! benchmark, and for the threaded rows the cross-check doubles as the
//! DESIGN.md §7/§14 determinism witness under real preemption.
//!
//! Each scale builds its scenario and hitlist **once** and reuses them
//! across reps and shard counts: the benchmark times the scan engine, not
//! the topology generator, and at 10^6 blocks regenerating the world per
//! rep would dominate the wall clock. The columnar scan core keeps per-rep
//! memory bounded by the hitlist plus O(hitlist/K) in-flight probe state,
//! which is what makes `--targets 1000000` a one-machine benchmark; peak
//! RSS is printed at exit as the boundedness witness.
//!
//! Percentiles are interpolated ([`Histogram::quantile_interpolated`]):
//! with a single-digit rep count, rank-picking p90 just returns the max —
//! interpolation keeps p90 a distinct, meaningful statistic. Each run
//! also stamps a monotonically increasing `run` counter (previous
//! artifact's `run` + 1) so baseline trajectories can order runs without
//! wall-clock timestamps.
//!
//! Run with: `cargo run --release -p vp-bench --bin bench_scan`
//! (`--reps <n>` per-(scale, K) repetition count, `--targets <n,n,...>`
//! comma-separated hitlist scales, `--out <path>` to redirect the
//! artifact, `--flight <path>` to also write a `vp-obs-flight/v1` flight
//! document from one instrumented threaded run at the first scale —
//! `vp-monitor profile` renders it as an attribution report).
//!
//! vp-bench is the one crate allowed to read wall clocks (lint rules
//! d2/d4): timing benchmarks is exactly what real time is for.

use std::collections::BTreeMap;
use std::time::Instant;

use serde_json::Value;
use vp_bench::{bench_hitlist, bench_scenario_scaled};
use vp_hitlist::Hitlist;
use vp_net::SimTime;
use vp_obs::{Clock, FlightDoc, Histogram, WallChannel};
use vp_sim::exec::ShardExecutor;
use vp_sim::{CatchmentOracle, FaultConfig, Scenario, StaticOracle};
use verfploeter::scan::{run_scan, run_scan_sharded_on, ScanConfig, ScanResult};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Worker cap for the threaded rows: keeps the artifact comparable
/// across hosts with more cores than the committed baselines' machine.
const MAX_WORKERS: usize = 8;

/// 1ms → ~90min in ×1.5 steps: fine enough that median/p90 of a scan
/// that takes tens of ms to seconds land in distinct buckets.
fn wall_time_buckets() -> Vec<u64> {
    Histogram::exponential(1_000_000, 3, 2, 40).bounds().to_vec()
}

fn scan_once(
    s: &Scenario,
    hl: &Hitlist,
    shards: usize,
    threaded: bool,
    seed: u64,
) -> (ScanResult, u64) {
    let table = s.routing();
    let config = ScanConfig::default();
    let start = Instant::now();
    let result = if shards == 1 && !threaded {
        run_scan(
            &s.world,
            hl,
            &s.announcement,
            Box::new(StaticOracle::new(table)),
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            seed,
        )
    } else {
        // Inline executor for the `threaded: false` rows so the pure
        // sharding overhead is measured identically on every host;
        // K-thread executor (capped) for the `threaded: true` rows.
        let exec = if threaded {
            ShardExecutor::new(shards.min(MAX_WORKERS))
        } else {
            ShardExecutor::serial()
        };
        run_scan_sharded_on(
            &exec,
            &s.world,
            hl,
            &s.announcement,
            &|| Box::new(StaticOracle::new(table.clone())) as Box<dyn CatchmentOracle>,
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            seed,
            shards,
        )
    };
    (result, start.elapsed().as_nanos() as u64)
}

/// Wall clock behind the flight recorder's wall channel. vp-bench may
/// read real time (lint rules d2/d4), and the wall channel never feeds a
/// deterministic artifact — the flight doc labels it as host timing.
struct FlightWall {
    epoch: Instant,
}

impl Clock for FlightWall {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// One flight-instrumented threaded scan at K=8; returns the document to
/// write. The sim channel must match the uninstrumented reference's
/// byte-for-byte — attaching a wall channel is observation, not
/// perturbation (§7).
fn flight_run(s: &Scenario, hl: &Hitlist, reference: &ScanResult, targets: u64) -> FlightDoc {
    let table = s.routing();
    let config = ScanConfig {
        wall: Some(WallChannel::new(std::sync::Arc::new(FlightWall {
            epoch: Instant::now(),
        }))),
        ..ScanConfig::default()
    };
    let shards = 8;
    let exec = ShardExecutor::new(shards.min(MAX_WORKERS));
    let result = run_scan_sharded_on(
        &exec,
        &s.world,
        hl,
        &s.announcement,
        &|| Box::new(StaticOracle::new(table.clone())) as Box<dyn CatchmentOracle>,
        FaultConfig::default(),
        SimTime::ZERO,
        &config,
        0xbe9c,
        shards,
    );
    assert_eq!(
        result.obs.flight.to_canonical_json(),
        reference.obs.flight.to_canonical_json(),
        "sim flight channel diverged between instrumented threaded and serial runs"
    );
    FlightDoc {
        source: format!("bench_scan/{targets}"),
        sim: result.obs.flight.clone(),
        wall: result.obs.wall_flight.clone(),
    }
}

/// The `run` counter for this invocation: previous artifact's + 1.
fn next_run(out: &str) -> u64 {
    let prev = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|doc| doc.get("run").and_then(Value::as_u64))
        .unwrap_or(0);
    prev + 1
}

/// Peak resident set size in kiB (`VmHWM` from `/proc/self/status`), the
/// bounded-memory witness for the million-block scale. `None` off Linux.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // 9 reps: enough samples that interpolated p90 sits strictly between
    // the median and the max instead of pinning to either.
    let mut reps: u32 = 9;
    let mut out = "BENCH_scan.json".to_owned();
    let mut flight: Option<String> = None;
    let mut scales: Vec<usize> = vec![15_000];
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--reps wants a positive integer");
                        std::process::exit(2);
                    });
            }
            "--targets" => {
                i += 1;
                scales = args
                    .get(i)
                    .map(|s| {
                        s.split(',')
                            .map(|t| match t.trim().parse::<usize>() {
                                Ok(n) if n > 0 => n,
                                _ => {
                                    eprintln!("--targets wants positive integers, got {t:?}");
                                    std::process::exit(2);
                                }
                            })
                            .collect()
                    })
                    .unwrap_or_else(|| {
                        eprintln!("--targets wants a comma-separated list of block counts");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out wants a path");
                    std::process::exit(2);
                });
            }
            "--flight" => {
                i += 1;
                flight = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--flight wants a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "unknown argument {other:?} (supported: --reps, --targets, --out, --flight)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let run = next_run(&out);
    println!(
        "bench_scan: scales {scales:?}, {reps} reps per K, run {run}"
    );

    let mut series = Vec::new();
    let mut first_scale_targets = None;
    for &scale in &scales {
        let s = bench_scenario_scaled(33, scale);
        let hl = bench_hitlist(&s);
        // Fixed reference for the bit-identity cross-check (and a warmup).
        let (reference, _) = scan_once(&s, &hl, 1, false, 0xbe9c);
        let targets = reference.probes_sent;
        assert_eq!(
            targets, scale as u64,
            "scaled scenario undershoots the requested block count — \
             raise num_ases in bench_scenario_scaled"
        );
        if first_scale_targets.is_none() {
            if let Some(path) = &flight {
                let doc = flight_run(&s, &hl, &reference, targets);
                std::fs::write(path, doc.to_canonical_json())
                    .unwrap_or_else(|e| panic!("write {path}: {e}"));
                println!("  wrote flight document to {path}");
            }
        }
        first_scale_targets.get_or_insert(targets);
        println!("  targets={targets}");
        for shards in SHARD_COUNTS {
            // K=1 threaded would measure the same inline path twice.
            let modes: &[bool] = if shards == 1 { &[false] } else { &[false, true] };
            for &threaded in modes {
                let mut hist = Histogram::new(wall_time_buckets());
                for rep in 0..reps {
                    let (result, wall) = scan_once(&s, &hl, shards, threaded, 0xbe9c);
                    assert_eq!(
                        result.catchments.len(),
                        reference.catchments.len(),
                        "targets={targets} K={shards} threaded={threaded} rep={rep}: \
                         catchment map diverged from serial"
                    );
                    assert_eq!(
                        result.obs.registry.to_canonical_json(),
                        reference.obs.registry.to_canonical_json(),
                        "targets={targets} K={shards} threaded={threaded} rep={rep}: \
                         metrics registry diverged from serial"
                    );
                    hist.observe(wall);
                }
                let median = hist.quantile_interpolated(0.5);
                let p90 = hist.quantile_interpolated(0.9);
                println!(
                    "    K={shards}{}: median {:.1}ms  p90 {:.1}ms  (min {:.1}ms, max {:.1}ms)",
                    if threaded { " threaded" } else { "" },
                    median as f64 / 1e6,
                    p90 as f64 / 1e6,
                    hist.min() as f64 / 1e6,
                    hist.max() as f64 / 1e6,
                );
                let mut entry = BTreeMap::new();
                entry.insert("targets".to_owned(), Value::U64(targets));
                entry.insert("shards".to_owned(), Value::U64(shards as u64));
                entry.insert("threaded".to_owned(), Value::Bool(threaded));
                entry.insert("reps".to_owned(), Value::U64(reps as u64));
                entry.insert("median_ns".to_owned(), Value::U64(median));
                entry.insert("p90_ns".to_owned(), Value::U64(p90));
                entry.insert("min_ns".to_owned(), Value::U64(hist.min()));
                entry.insert("max_ns".to_owned(), Value::U64(hist.max()));
                series.push(Value::Object(entry));
            }
        }
    }

    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-bench-scan/v1".to_owned()),
    );
    doc.insert("benchmark".to_owned(), Value::Str("run_scan".to_owned()));
    doc.insert("run".to_owned(), Value::U64(run));
    // Doc-level targets stays the first scale: series entries carry their
    // own, and pre-multi-scale readers default entries to this value.
    doc.insert(
        "targets".to_owned(),
        Value::U64(first_scale_targets.unwrap_or(0)),
    );
    doc.insert("series".to_owned(), Value::Array(series));
    let text = serde_json::to_string_pretty(&Value::Object(doc)).expect("serialize");
    std::fs::write(&out, text).unwrap_or_else(|e| panic!("write {out}: {e}"));
    if let Some(kib) = peak_rss_kib() {
        println!("peak RSS {:.1} MiB", kib as f64 / 1024.0);
    }
    println!("wrote {out}");
}
