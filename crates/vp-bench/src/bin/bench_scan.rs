//! Wall-clock baseline for the sharded scan engine: `BENCH_scan.json`.
//!
//! Runs the 15k-target benchmark scan serially and at K ∈ {2, 4, 8}
//! shards, folds the per-rep wall times into a [`vp_obs::Histogram`]
//! (the same type the run reports use), and writes median/p90 per K to
//! `BENCH_scan.json` so future PRs have a perf trajectory to compare
//! against (`vp-monitor check-bench` gates on it). Every rep also
//! cross-checks that the sharded catchment map stays bit-identical to the
//! serial one — a benchmark of a wrong result would be worse than no
//! benchmark.
//!
//! Percentiles are interpolated ([`Histogram::quantile_interpolated`]):
//! with a single-digit rep count, rank-picking p90 just returns the max —
//! interpolation keeps p90 a distinct, meaningful statistic. Each run
//! also stamps a monotonically increasing `run` counter (previous
//! artifact's `run` + 1) so baseline trajectories can order runs without
//! wall-clock timestamps.
//!
//! Run with: `cargo run --release -p vp-bench --bin bench_scan`
//! (`--reps <n>` to change the per-K repetition count, `--out <path>`
//! to redirect the artifact).
//!
//! vp-bench is the one crate allowed to read wall clocks (lint rules
//! d2/d4): timing benchmarks is exactly what real time is for.

use std::collections::BTreeMap;
use std::time::Instant;

use serde_json::Value;
use vp_bench::{bench_hitlist, bench_scenario};
use vp_net::SimTime;
use vp_obs::Histogram;
use vp_sim::{CatchmentOracle, FaultConfig, StaticOracle};
use verfploeter::scan::{run_scan, run_scan_sharded, ScanConfig, ScanResult};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// 1ms → ~90min in ×1.5 steps: fine enough that median/p90 of a scan
/// that takes tens of ms to seconds land in distinct buckets.
fn wall_time_buckets() -> Vec<u64> {
    Histogram::exponential(1_000_000, 3, 2, 40).bounds().to_vec()
}

fn scan_once(shards: usize, seed: u64) -> (ScanResult, u64) {
    let s = bench_scenario(33);
    let hl = bench_hitlist(&s);
    let table = s.routing();
    let config = ScanConfig::default();
    let start = Instant::now();
    let result = if shards == 1 {
        run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table)),
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            seed,
        )
    } else {
        run_scan_sharded(
            &s.world,
            &hl,
            &s.announcement,
            &|| Box::new(StaticOracle::new(table.clone())) as Box<dyn CatchmentOracle>,
            FaultConfig::default(),
            SimTime::ZERO,
            &config,
            seed,
            shards,
        )
    };
    (result, start.elapsed().as_nanos() as u64)
}

/// The `run` counter for this invocation: previous artifact's + 1.
fn next_run(out: &str) -> u64 {
    let prev = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|doc| doc.get("run").and_then(Value::as_u64))
        .unwrap_or(0);
    prev + 1
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // 9 reps: enough samples that interpolated p90 sits strictly between
    // the median and the max instead of pinning to either.
    let mut reps: u32 = 9;
    let mut out = "BENCH_scan.json".to_owned();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                reps = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--reps wants a positive integer");
                        std::process::exit(2);
                    });
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out wants a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (supported: --reps, --out)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    // Fixed reference for the bit-identity cross-check (and a warmup).
    let (reference, _) = scan_once(1, 0xbe9c);
    let targets = reference.probes_sent;
    let run = next_run(&out);
    println!("bench_scan: {targets} targets, {reps} reps per K, run {run}");

    let mut series = Vec::new();
    for shards in SHARD_COUNTS {
        let mut hist = Histogram::new(wall_time_buckets());
        for rep in 0..reps {
            let (result, wall) = scan_once(shards, 0xbe9c);
            assert_eq!(
                result.catchments.len(),
                reference.catchments.len(),
                "K={shards} rep={rep}: catchment map diverged from serial"
            );
            assert_eq!(
                result.obs.registry.to_canonical_json(),
                reference.obs.registry.to_canonical_json(),
                "K={shards} rep={rep}: metrics registry diverged from serial"
            );
            hist.observe(wall);
        }
        let median = hist.quantile_interpolated(0.5);
        let p90 = hist.quantile_interpolated(0.9);
        println!(
            "  K={shards}: median {:.1}ms  p90 {:.1}ms  (min {:.1}ms, max {:.1}ms)",
            median as f64 / 1e6,
            p90 as f64 / 1e6,
            hist.min() as f64 / 1e6,
            hist.max() as f64 / 1e6,
        );
        let mut entry = BTreeMap::new();
        entry.insert("shards".to_owned(), Value::U64(shards as u64));
        entry.insert("reps".to_owned(), Value::U64(reps as u64));
        entry.insert("median_ns".to_owned(), Value::U64(median));
        entry.insert("p90_ns".to_owned(), Value::U64(p90));
        entry.insert("min_ns".to_owned(), Value::U64(hist.min()));
        entry.insert("max_ns".to_owned(), Value::U64(hist.max()));
        series.push(Value::Object(entry));
    }

    let mut doc = BTreeMap::new();
    doc.insert(
        "schema".to_owned(),
        Value::Str("vp-bench-scan/v1".to_owned()),
    );
    doc.insert("benchmark".to_owned(), Value::Str("run_scan".to_owned()));
    doc.insert("run".to_owned(), Value::U64(run));
    doc.insert("targets".to_owned(), Value::U64(targets));
    doc.insert("series".to_owned(), Value::Array(series));
    let text = serde_json::to_string_pretty(&Value::Object(doc)).expect("serialize");
    std::fs::write(&out, text).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
