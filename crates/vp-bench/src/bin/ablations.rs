//! Ablation harness for the design choices called out in DESIGN.md §6.
//!
//! Unlike the Criterion benches (which measure time), these ablations
//! measure *quality*: what each design choice buys in measurement terms.
//!
//! Run with: `cargo run --release -p vp-bench --bin ablations`

use vp_bench::{bench_hitlist, bench_scenario};
use vp_dns::{LoadModel, QueryLog};
use vp_net::{FeistelPermutation, LcgPermutation, ProbeOrder, SimDuration, SimTime};
use vp_sim::{FaultConfig, StaticOracle};
use verfploeter::load::load_fraction_to;
use verfploeter::predict::actual_load_fraction;
use verfploeter::scan::{run_scan, ScanConfig};
use verfploeter::ProbeConfig;

fn main() {
    probe_order_burstiness();
    hot_potato_splits();
    load_weighting_value();
    retry_coverage();
}

/// Ablation 1 — probe ordering (§3.1's abuse-avoidance): how many probes
/// land in the same /16 within any window of 256 consecutive probes?
/// (/16 rather than the paper's whole-Internet /8 granularity, because the
/// generated world spans a compact slice of address space.)
/// Feistel scattering should keep bursts near uniform; the LCG's stride
/// structure concentrates them.
fn probe_order_burstiness() {
    println!("== ablation: probe ordering (burst of probes into one /16 per 256-probe window) ==");
    let s = bench_scenario(21);
    let hl = bench_hitlist(&s);
    let n = hl.len() as u64;
    let window = 256usize;
    let slash16 = |i: usize| hl.entry(i).target.0 >> 16;
    let burst = |order: &dyn ProbeOrder| -> usize {
        let seq: Vec<u32> = (0..n)
            .map(|i| slash16(order.permute(i) as usize))
            .collect();
        let mut worst = 0usize;
        for w in seq.chunks(window) {
            let mut counts = std::collections::BTreeMap::new();
            for &p in w {
                *counts.entry(p).or_insert(0usize) += 1;
            }
            worst = worst.max(*counts.values().max().unwrap());
        }
        worst
    };
    let feistel = FeistelPermutation::new(n, 9);
    let lcg = LcgPermutation::new(n, 9);
    let sequential_worst = {
        // No permutation at all: hitlist is in block order, so a window is
        // almost always a single /16.
        let mut worst = 0;
        for w in (0..n as usize).collect::<Vec<_>>().chunks(window) {
            let mut counts = std::collections::BTreeMap::new();
            for &i in w {
                *counts.entry(slash16(i)).or_insert(0usize) += 1;
            }
            worst = worst.max(*counts.values().max().unwrap());
        }
        worst
    };
    println!("  sequential (no permutation): worst burst {sequential_worst}/{window}");
    println!("  feistel:                     worst burst {}/{window}", burst(&feistel));
    println!("  lcg:                         worst burst {}/{window}", burst(&lcg));
    println!();
}

/// Ablation 2 — hot-potato per-PoP egress: how many ASes split across
/// sites with it, versus forcing every PoP onto the AS-level selection.
fn hot_potato_splits() {
    println!("== ablation: hot-potato per-PoP egress (AS catchment splits) ==");
    let s = vp_sim::Scenario::tangled(
        vp_topology::TopologyConfig {
            seed: 22,
            num_ases: 1000,
            max_blocks: 20_000,
            ..vp_topology::TopologyConfig::default()
        },
        7,
    );
    let table = s.routing();
    let with_hot_potato = s
        .world
        .graph
        .ases
        .iter()
        .filter(|n| table.sites_seen_by_as(&s.world.graph, n.asn).len() > 1)
        .count();
    // Without hot-potato every PoP would use the AS-level selected route,
    // so no AS can split, by construction.
    println!("  with hot-potato:    {with_hot_potato} of {} ASes split", s.world.graph.len());
    println!("  without hot-potato: 0 ASes split (all PoPs forced to the AS-level route)");
    println!();
}

/// Ablation 3 — load weighting (§5.4/§5.5): prediction error with and
/// without calibrating block counts by query volume.
fn load_weighting_value() {
    println!("== ablation: load weighting (prediction error at the first site) ==");
    let s = bench_scenario(23);
    let hl = bench_hitlist(&s);
    let table = s.routing();
    let scan = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(table.clone())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        23,
    );
    let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
    let site = s.announcement.sites[0].id;
    let actual = actual_load_fraction(&table, &log, site);
    let with_load = load_fraction_to(&scan.catchments, &log, site);
    let without = scan.catchments.fraction_to(site);
    println!("  measured load split:      {:.1}%", actual * 100.0);
    println!(
        "  load-weighted prediction: {:.1}%  (error {:.1} pp)",
        with_load * 100.0,
        (with_load - actual).abs() * 100.0
    );
    println!(
        "  block-count prediction:   {:.1}%  (error {:.1} pp)",
        without * 100.0,
        (without - actual).abs() * 100.0
    );
    println!();
}

/// Ablation 4 — single probe vs retry (§3.1 future work): how much
/// coverage a second probing round recovers when blocks churn.
fn retry_coverage() {
    println!("== ablation: single probe vs one retry round (coverage under churn) ==");
    let s = bench_scenario(24);
    let hl = bench_hitlist(&s);
    let table = s.routing();
    let faults = FaultConfig {
        churn_down_prob: 0.10,
        ..FaultConfig::default()
    };
    let round = |start_min: u64, ident: u16, seed: u64| {
        run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            faults.clone(),
            SimTime::ZERO + SimDuration::from_mins(start_min),
            &ScanConfig {
                name: format!("retry-{ident}"),
                probe: ProbeConfig {
                    ident,
                    ..ProbeConfig::default()
                },
                cutoff: SimDuration::from_mins(15),
                ..ScanConfig::default()
            },
            seed,
        )
    };
    let first = round(0, 1, 31);
    let second = round(15, 2, 32);
    let mut merged: std::collections::BTreeSet<_> =
        first.catchments.iter().map(|(b, _)| b).collect();
    let single = merged.len();
    for (b, _) in second.catchments.iter() {
        merged.insert(b);
    }
    println!("  single round:  {single} blocks mapped");
    println!(
        "  with retry:    {} blocks mapped (+{:.1}%)",
        merged.len(),
        100.0 * (merged.len() - single) as f64 / single as f64
    );
    println!(
        "  (the paper sends a single probe per target and leaves retries as future work)"
    );
}
