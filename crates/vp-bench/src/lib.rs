//! Shared fixtures for the benchmark suite.

use vp_hitlist::{Hitlist, HitlistConfig};
use vp_sim::Scenario;
use vp_topology::TopologyConfig;

/// A small benchmark world (fast to build, big enough to be meaningful).
pub fn bench_scenario(seed: u64) -> Scenario {
    Scenario::broot(
        TopologyConfig {
            seed,
            num_ases: 600,
            max_blocks: 15_000,
            ..TopologyConfig::default()
        },
        7,
    )
}

/// A benchmark world scaled to `targets` populated /24 blocks.
///
/// `max_blocks` caps generation at exactly `targets`; `num_ases` grows
/// with the cap so generation actually saturates it (the 600-AS default
/// fills 15k blocks, i.e. ≥25 blocks per AS — the same ratio holds at
/// larger scales because per-AS prefix budgets don't shrink). The 15k
/// scale is byte-identical to [`bench_scenario`].
pub fn bench_scenario_scaled(seed: u64, targets: usize) -> Scenario {
    Scenario::broot(
        TopologyConfig {
            seed,
            num_ases: (targets / 25).max(600),
            max_blocks: targets,
            ..TopologyConfig::default()
        },
        7,
    )
}

/// A hitlist over the benchmark world.
pub fn bench_hitlist(s: &Scenario) -> Hitlist {
    Hitlist::from_internet(&s.world, &HitlistConfig::default())
}

/// Sorted-vec longest-prefix-match baseline for the trie ablation: linear
/// structures are often faster than pointer-chasing for small tables, and
/// the bench quantifies where the trie starts winning.
pub struct SortedVecLpm<T> {
    /// Sorted by (addr, len); lookup scans candidates per prefix length.
    by_len: Vec<Vec<(u32, T)>>,
}

impl<T: Copy> SortedVecLpm<T> {
    pub fn new(entries: impl IntoIterator<Item = (vp_net::Prefix, T)>) -> Self {
        let mut by_len: Vec<Vec<(u32, T)>> = (0..=32).map(|_| Vec::new()).collect();
        for (p, v) in entries {
            by_len[p.len() as usize].push((p.addr().0, v));
        }
        for v in &mut by_len {
            v.sort_by_key(|(a, _)| *a);
        }
        SortedVecLpm { by_len }
    }

    /// Longest match: scan lengths from /32 down, binary-searching each.
    pub fn longest_match(&self, ip: vp_net::Ipv4Addr) -> Option<T> {
        for len in (0..=32u8).rev() {
            let table = &self.by_len[len as usize];
            if table.is_empty() {
                continue;
            }
            let masked = ip.0 & vp_net::Prefix::mask(len);
            if let Ok(i) = table.binary_search_by_key(&masked, |(a, _)| *a) {
                return Some(table[i].1);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_net::{Ipv4Addr, Prefix, PrefixTrie};

    #[test]
    fn sorted_vec_lpm_agrees_with_trie() {
        let s = bench_scenario(1);
        let entries: Vec<(Prefix, u32)> = s
            .world
            .prefixes
            .iter()
            .map(|p| (p.prefix, p.origin.0))
            .collect();
        let vec_lpm = SortedVecLpm::new(entries.clone());
        let mut trie = PrefixTrie::new();
        for (p, v) in entries {
            trie.insert(p, v);
        }
        for b in s.world.blocks.iter().step_by(37) {
            let ip = b.representative();
            let via_vec = vec_lpm.longest_match(ip);
            let via_trie = trie.longest_match(ip).map(|(_, v)| *v);
            assert_eq!(via_vec, via_trie, "LPM mismatch for {ip}");
        }
        assert!(vec_lpm.longest_match(Ipv4Addr::new(0, 0, 0, 1)).is_none());
    }
}
