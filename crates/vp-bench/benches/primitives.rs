//! Benchmarks of the vp-net primitives, including the probe-order and
//! LPM ablations called out in DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vp_bench::{bench_scenario, SortedVecLpm};
use vp_net::{
    FeistelPermutation, LcgPermutation, Prefix, PrefixTrie, ProbeOrder, SimDuration, SimTime,
    TokenBucket,
};

fn bench_permutations(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_order");
    g.sample_size(20);
    for n in [100_000u64, 1_000_000] {
        let feistel = FeistelPermutation::new(n, 42);
        g.bench_with_input(BenchmarkId::new("feistel", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in (0..n).step_by(97) {
                    acc ^= feistel.permute(i);
                }
                black_box(acc)
            })
        });
        let lcg = LcgPermutation::new(n, 42);
        g.bench_with_input(BenchmarkId::new("lcg", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in (0..n).step_by(97) {
                    acc ^= lcg.permute(i);
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_lpm(c: &mut Criterion) {
    let s = bench_scenario(2);
    let entries: Vec<(Prefix, u32)> = s
        .world
        .prefixes
        .iter()
        .map(|p| (p.prefix, p.origin.0))
        .collect();
    let mut trie = PrefixTrie::new();
    for (p, v) in entries.clone() {
        trie.insert(p, v);
    }
    let vec_lpm = SortedVecLpm::new(entries);
    let probes: Vec<vp_net::Ipv4Addr> = s
        .world
        .blocks
        .iter()
        .step_by(7)
        .map(|b| b.representative())
        .collect();

    let mut g = c.benchmark_group("lpm_lookup");
    g.sample_size(30);
    g.bench_function("prefix_trie", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &probes {
                if trie.longest_match(*ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("sorted_vec", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for ip in &probes {
                if vec_lpm.longest_match(*ip).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_token_bucket(c: &mut Criterion) {
    c.bench_function("token_bucket_pacing_10k", |b| {
        b.iter(|| {
            let mut bucket = TokenBucket::new(10_000.0, 1.0);
            let mut t = SimTime::ZERO;
            for _ in 0..10_000 {
                t = bucket.next_available(t);
                assert!(bucket.try_acquire(t));
                t = t + SimDuration(1);
            }
            black_box(t)
        })
    });
}

criterion_group!(benches, bench_permutations, bench_lpm, bench_token_bucket);
criterion_main!(benches);
