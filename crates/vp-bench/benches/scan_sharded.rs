//! Sharded vs serial scan wall-clock: the payoff side of the tentpole.
//!
//! The equivalence suite (`crates/verfploeter/tests/sharded_equivalence.rs`)
//! proves sharded(K) == serial bit-for-bit; this bench measures what the
//! sharding buys. On a multi-core host the K-engine scan should beat the
//! serial engine roughly linearly until K exceeds the core count. Even on
//! one core sharding is not pure overhead: K small event heaps and K small
//! dedup sets replace one big heap and one big set, so the serial-vs-K=1
//! gap isolates the fixed sharding cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vp_bench::{bench_hitlist, bench_scenario};
use vp_net::SimTime;
use vp_sim::{CatchmentOracle, FaultConfig, StaticOracle};
use verfploeter::scan::{run_scan, run_scan_sharded, ScanConfig};

fn bench_scan_sharded(c: &mut Criterion) {
    let s = bench_scenario(11);
    let hl = bench_hitlist(&s);
    let table = s.routing();

    let mut g = c.benchmark_group("scan_sharded");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(5));
    g.throughput(Throughput::Elements(hl.len() as u64));

    g.bench_function("serial_15k_targets", |b| {
        b.iter(|| {
            let result = run_scan(
                &s.world,
                &hl,
                &s.announcement,
                Box::new(StaticOracle::new(table.clone())),
                FaultConfig::default(),
                SimTime::ZERO,
                &ScanConfig::default(),
                1,
            );
            black_box(result.catchments.len())
        })
    });

    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("sharded_15k_targets", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let result = run_scan_sharded(
                        &s.world,
                        &hl,
                        &s.announcement,
                        &|| Box::new(StaticOracle::new(table.clone())) as Box<dyn CatchmentOracle>,
                        FaultConfig::default(),
                        SimTime::ZERO,
                        &ScanConfig::default(),
                        1,
                        shards,
                    );
                    black_box(result.catchments.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scan_sharded);
criterion_main!(benches);
