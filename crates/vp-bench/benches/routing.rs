//! BGP convergence cost: world generation and route computation, including
//! the hot-potato and prepend-ignore ablations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use vp_bgp::BgpSim;
use vp_sim::Scenario;
use vp_topology::{Internet, TopologyConfig};

fn cfg(n: usize, blocks: usize, seed: u64) -> TopologyConfig {
    TopologyConfig {
        seed,
        num_ases: n,
        max_blocks: blocks,
        ..TopologyConfig::default()
    }
}

fn bench_world_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_generation");
    g.sample_size(10);
    for (n, blocks) in [(500usize, 10_000usize), (2000, 50_000)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}as_{blocks}blk")),
            &(n, blocks),
            |b, &(n, blocks)| {
                b.iter(|| black_box(Internet::generate(cfg(n, blocks, 3))));
            },
        );
    }
    g.finish();
}

fn bench_route_computation(c: &mut Criterion) {
    let mut g = c.benchmark_group("bgp_route");
    g.sample_size(20);
    for n in [500usize, 2000, 6000] {
        let scenario = Scenario::broot(cfg(n, 5_000, 4), 7);
        g.bench_with_input(BenchmarkId::new("broot_2site", n), &n, |b, _| {
            b.iter(|| black_box(scenario.routing()));
        });
    }
    // Nine sites cost more propagation diversity than two.
    let tangled = Scenario::tangled(cfg(2000, 5_000, 5), 7);
    g.bench_function("tangled_9site_2000as", |b| {
        b.iter(|| black_box(tangled.routing()));
    });
    g.finish();
}

fn bench_ignore_prepend_ablation(c: &mut Criterion) {
    let scenario = Scenario::broot(cfg(2000, 5_000, 6), 7);
    let mut g = c.benchmark_group("bgp_ablation");
    g.sample_size(20);
    g.bench_function("with_ignore_prepend", |b| {
        let sim = BgpSim::new(&scenario.world.graph, 7);
        b.iter(|| black_box(sim.route(&scenario.announcement)));
    });
    g.bench_function("without_ignore_prepend", |b| {
        let sim = BgpSim::new(&scenario.world.graph, 7).with_ignore_prepend_fraction(0.0);
        b.iter(|| black_box(sim.route(&scenario.announcement)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_world_generation,
    bench_route_computation,
    bench_ignore_prepend_ablation
);
criterion_main!(benches);
