//! Measurement-pipeline throughput: full scans, cleaning, collection.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use vp_bench::{bench_hitlist, bench_scenario};
use vp_bgp::SiteId;
use vp_net::{Ipv4Addr, SimDuration, SimTime};
use vp_sim::{FaultConfig, StaticOracle};
use verfploeter::collector::{forward_to_central, RawReply};
use verfploeter::prober::{ProbeConfig, Prober};
use verfploeter::scan::{run_scan, ScanConfig};
use verfploeter::{clean, CatchmentMap};

fn bench_full_scan(c: &mut Criterion) {
    let s = bench_scenario(11);
    let hl = bench_hitlist(&s);
    let mut g = c.benchmark_group("scan");
    g.sample_size(10);
    g.throughput(Throughput::Elements(hl.len() as u64));
    g.bench_function("full_round_15k_targets", |b| {
        b.iter(|| {
            let result = run_scan(
                &s.world,
                &hl,
                &s.announcement,
                Box::new(StaticOracle::new(s.routing())),
                FaultConfig::default(),
                SimTime::ZERO,
                &ScanConfig::default(),
                1,
            );
            black_box(result.catchments.len())
        })
    });
    g.finish();
}

fn bench_probe_scheduling(c: &mut Criterion) {
    let s = bench_scenario(12);
    let hl = bench_hitlist(&s);
    let prober = Prober::new(ProbeConfig::default());
    let src = s.announcement.measurement_addr();
    let mut g = c.benchmark_group("prober");
    g.sample_size(20);
    g.throughput(Throughput::Elements(hl.len() as u64));
    g.bench_function("schedule_15k", |b| {
        b.iter(|| black_box(prober.schedule(&hl, src, SimTime::ZERO).len()))
    });
    g.finish();
}

fn synthetic_replies(n: usize, hl: &vp_hitlist::Hitlist) -> Vec<RawReply> {
    (0..n)
        .map(|i| {
            let idx = (i % hl.len()) as u64;
            RawReply {
                site: SiteId((i % 2) as u8),
                at: SimTime(i as u64 * 1000),
                src: hl.entry(idx as usize).target,
                ident: 1,
                index: Some(idx),
            }
        })
        .collect()
}

fn bench_cleaning(c: &mut Criterion) {
    let s = bench_scenario(13);
    let hl = bench_hitlist(&s);
    let replies = synthetic_replies(50_000, &hl);
    let mut g = c.benchmark_group("cleaning");
    g.sample_size(20);
    g.throughput(Throughput::Elements(replies.len() as u64));
    g.bench_function("clean_50k_replies", |b| {
        b.iter(|| {
            let (kept, stats) = clean(
                &replies,
                &hl,
                1,
                SimTime::ZERO,
                SimDuration::from_mins(15),
            );
            black_box((kept.len(), stats.kept))
        })
    });
    g.finish();
}

fn bench_collector(c: &mut Criterion) {
    // Per-site capture logs -> threaded central forwarding.
    let caps: Vec<Vec<vp_sim::SiteCapture>> = (0..4)
        .map(|site| {
            (0..10_000u32)
                .map(|i| {
                    let icmp = vp_packet::IcmpMessage::EchoReply {
                        ident: 1,
                        seq: i as u16,
                        payload: Prober::encode_payload(i as u64),
                    };
                    vp_sim::SiteCapture {
                        site: SiteId(site),
                        at: SimTime(i as u64),
                        packet: vp_packet::Ipv4Packet::new(
                            Ipv4Addr(0x0a000000 + i),
                            Ipv4Addr::new(240, 0, 0, 1),
                            vp_packet::Protocol::Icmp,
                            icmp.emit(),
                        ),
                    }
                })
                .collect()
        })
        .collect();
    let mut g = c.benchmark_group("collector");
    g.sample_size(10);
    g.throughput(Throughput::Elements(40_000));
    g.bench_function("forward_40k_4sites", |b| {
        b.iter(|| black_box(forward_to_central(caps.clone()).len()))
    });
    g.finish();
}

fn bench_catchment_fold(c: &mut Criterion) {
    let s = bench_scenario(14);
    let hl = bench_hitlist(&s);
    let replies = synthetic_replies(hl.len(), &hl);
    let (kept, _) = clean(&replies, &hl, 1, SimTime::ZERO, SimDuration::from_mins(15));
    let mut g = c.benchmark_group("catchment");
    g.sample_size(30);
    g.throughput(Throughput::Elements(kept.len() as u64));
    g.bench_function("fold_map", |b| {
        b.iter(|| black_box(CatchmentMap::from_replies("bench", &kept, &hl).len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_full_scan,
    bench_probe_scheduling,
    bench_cleaning,
    bench_collector,
    bench_catchment_fold
);
criterion_main!(benches);
