//! Wire-format throughput: the prober emits and the collector parses
//! millions of packets per measurement, so these paths matter.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vp_net::Ipv4Addr;
use vp_packet::{DnsMessage, IcmpMessage, Ipv4Packet, Protocol, UdpDatagram};

fn bench_icmp(c: &mut Criterion) {
    let msg = IcmpMessage::echo_request(7, 1234, Bytes::from_static(b"VPLT\0\0\0\0\0\0\0\x2a"));
    let wire = msg.emit();
    let mut g = c.benchmark_group("icmp");
    g.bench_function("emit", |b| b.iter(|| black_box(msg.emit())));
    g.bench_function("parse", |b| {
        b.iter(|| black_box(IcmpMessage::parse(&wire).unwrap()))
    });
    g.finish();
}

fn bench_ipv4(c: &mut Criterion) {
    let icmp = IcmpMessage::echo_request(7, 1234, Bytes::from_static(b"VPLT\0\0\0\0\0\0\0\x2a"));
    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(240, 0, 0, 1),
        Ipv4Addr::new(10, 1, 2, 3),
        Protocol::Icmp,
        icmp.emit(),
    );
    let wire = pkt.emit();
    let mut g = c.benchmark_group("ipv4");
    g.bench_function("emit", |b| b.iter(|| black_box(pkt.emit())));
    g.bench_function("parse", |b| {
        b.iter(|| black_box(Ipv4Packet::parse(&wire).unwrap()))
    });
    g.finish();
}

fn bench_dns(c: &mut Criterion) {
    let query = DnsMessage::hostname_bind_query(0xbeef, true);
    let response = DnsMessage::hostname_bind_response(&query, "lax1a.b.root-servers.org");
    let wire = response.emit();
    let udp = UdpDatagram::new(33000, 53, query.emit());
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(240, 0, 0, 1);
    let udp_wire = udp.emit(src, dst);

    let mut g = c.benchmark_group("dns");
    g.bench_function("query_emit", |b| b.iter(|| black_box(query.emit())));
    g.bench_function("response_parse", |b| {
        b.iter(|| black_box(DnsMessage::parse(&wire).unwrap()))
    });
    g.bench_function("udp_emit_checksummed", |b| {
        b.iter(|| black_box(udp.emit(src, dst)))
    });
    g.bench_function("udp_parse_checksummed", |b| {
        b.iter(|| black_box(UdpDatagram::parse(&udp_wire, src, dst).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_icmp, bench_ipv4, bench_dns);
criterion_main!(benches);
