//! The determinism-proving harness for the sharded scan engine.
//!
//! The contract under test: `run_scan_sharded(K)` returns a `ScanResult`
//! **bit-identical** to `run_scan` — same catchment map, same cleaning
//! counters, same per-block RTTs, same simulator stats — for every shard
//! count K and every fault configuration, whether the shard engines run
//! inline or on real OS threads (`ShardExecutor::new(K)` forces one
//! thread per shard, so the matrix exercises genuine preemption and the
//! shard-id-ordered merge barrier of DESIGN.md §14). A scan result that
//! depends on how the work was scheduled would make parallel rounds
//! incomparable to the serial datasets, so any divergence here is a
//! release blocker.
//!
//! Alongside the end-to-end equivalence matrix, property tests check the
//! algebra the merge relies on: disjoint-map merging and counter merging
//! are associative and order-insensitive.

use proptest::prelude::*;
use vp_bgp::SiteId;
use vp_hitlist::{Hitlist, HitlistConfig};
use vp_net::{Block24, SimDuration, SimTime};
use vp_sim::exec::ShardExecutor;
use vp_sim::{FaultConfig, Scenario, StaticOracle};
use vp_topology::TopologyConfig;
use verfploeter::catchment::CatchmentMap;
use verfploeter::cleaning::CleaningStats;
use verfploeter::scan::{run_scan, run_scan_sharded_on, ScanConfig, ScanResult};

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];

/// The fault grid the equivalence matrix sweeps: a clean channel, the
/// defaults, and a deliberately hostile mix where every artifact class
/// fires often enough to exercise every keyed draw in the engine.
fn fault_grid() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("none", FaultConfig::none()),
        ("default", FaultConfig::default()),
        (
            "hostile",
            FaultConfig {
                loss: 0.05,
                duplicate_prob: 0.3,
                max_duplicates: 50,
                alias_prob: 0.2,
                late_prob: 0.1,
                late_delay: SimDuration::from_mins(20),
                unsolicited_prob: 0.05,
                churn_down_prob: 0.1,
                churn_round: SimDuration::from_mins(15),
            },
        ),
    ]
}

/// Field-by-field bit-equality between two scan results.
fn assert_identical(serial: &ScanResult, sharded: &ScanResult, label: &str) {
    assert_eq!(serial.cleaning, sharded.cleaning, "{label}: cleaning stats");
    assert!(sharded.cleaning.is_consistent(), "{label}: inconsistent stats");
    assert_eq!(serial.probes_sent, sharded.probes_sent, "{label}: probes");
    assert_eq!(serial.started, sharded.started, "{label}: start");
    assert_eq!(serial.last_probe, sharded.last_probe, "{label}: last probe");
    assert_eq!(serial.sim_stats, sharded.sim_stats, "{label}: sim stats");
    assert_eq!(
        serial.catchments.len(),
        sharded.catchments.len(),
        "{label}: map size"
    );
    for (block, site) in serial.catchments.iter() {
        assert_eq!(
            sharded.catchments.site_of(block),
            Some(site),
            "{label}: catchment of {block}"
        );
    }
    assert_eq!(serial.rtts.len(), sharded.rtts.len(), "{label}: rtt count");
    for (block, rtt) in serial.rtts.iter() {
        assert_eq!(
            sharded.rtts.get(block),
            Some(rtt),
            "{label}: rtt of {block}"
        );
    }
    // The merged per-shard metrics registries must fold to the exact bytes
    // of the serial registry (trace summaries are exempt: per-engine spans
    // legitimately vary with the shard layout).
    assert_eq!(
        serial.obs.registry.to_canonical_json(),
        sharded.obs.registry.to_canonical_json(),
        "{label}: obs registries"
    );
    assert_eq!(
        serial.obs.sim_end, sharded.obs.sim_end,
        "{label}: final sim clock"
    );
    // The sim-time flight timeline is part of the §7 contract: same
    // canonical bytes whatever the shard layout. (The wall channel is
    // explicitly excluded — see `wall_channel_is_outside_the_contract`.)
    assert_eq!(
        serial.obs.flight.to_canonical_json(),
        sharded.obs.flight.to_canonical_json(),
        "{label}: sim flight timelines"
    );
}

/// Runs the full equivalence matrix over one scenario.
fn equivalence_matrix(scenario: &Scenario, hitlist: &Hitlist, seed: u64) {
    for (fault_name, faults) in fault_grid() {
        let serial = run_scan(
            &scenario.world,
            hitlist,
            &scenario.announcement,
            Box::new(StaticOracle::new(scenario.routing())),
            faults.clone(),
            SimTime::ZERO,
            &ScanConfig::default(),
            seed,
        );
        // Sanity: the hostile config must actually produce dirty data,
        // otherwise the matrix is vacuous.
        if fault_name == "hostile" {
            assert!(serial.cleaning.duplicates > 0, "hostile grid too tame");
            assert!(serial.cleaning.unprobed_source > 0, "no aliases injected");
        }
        for shards in SHARD_COUNTS {
            // Inline executor isolates the sharding algebra; the forced
            // K-thread executor adds real OS-thread scheduling on top.
            // Both must reproduce the serial bytes.
            for (mode, exec) in [
                ("inline", ShardExecutor::serial()),
                ("threads", ShardExecutor::new(shards)),
            ] {
                let sharded = run_scan_sharded_on(
                    &exec,
                    &scenario.world,
                    hitlist,
                    &scenario.announcement,
                    &|| Box::new(StaticOracle::new(scenario.routing())),
                    faults.clone(),
                    SimTime::ZERO,
                    &ScanConfig::default(),
                    seed,
                    shards,
                );
                assert_identical(
                    &serial,
                    &sharded,
                    &format!("{fault_name}/K={shards}/{mode}"),
                );
            }
        }
    }
}

/// sharded(K) == serial for K ∈ {1,2,7,16} on the two-site B-Root world,
/// across the whole fault grid.
#[test]
fn broot_sharded_equals_serial_across_faults() {
    let s = Scenario::broot(TopologyConfig::tiny(81), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    equivalence_matrix(&s, &hl, 0xe901);
}

/// The same matrix on the nine-site Tangled world — more sites means the
/// per-site capture split and central merge are exercised harder.
#[test]
fn tangled_sharded_equals_serial_across_faults() {
    let s = Scenario::tangled(TopologyConfig::tiny(82), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    equivalence_matrix(&s, &hl, 0xe902);
}

/// A shard count larger than the hitlist degenerates to empty shards and
/// must still reproduce the serial result.
#[test]
fn more_shards_than_targets_still_identical() {
    let s = Scenario::broot(TopologyConfig::tiny(83), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let serial = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        3,
    );
    // Eight OS threads over mostly-empty shards: the barrier must still
    // drain every shard channel in id order and land on the serial bytes.
    let sharded = run_scan_sharded_on(
        &ShardExecutor::new(8),
        &s.world,
        &hl,
        &s.announcement,
        &|| Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        3,
        hl.len() + 13,
    );
    assert_identical(&serial, &sharded, "K>len");
}

/// Deterministic stand-in for a wall clock: strictly increasing ticks
/// from a shared atomic, safe to read from every shard thread.
struct CountingClock(std::sync::atomic::AtomicU64);

impl vp_obs::Clock for CountingClock {
    fn now_nanos(&self) -> u64 {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
}

/// Attaching a wall-time flight channel is observation, not
/// perturbation: every §7-governed artifact — registry bytes, catchments,
/// the sim flight timeline — must stay bit-identical to the serial run,
/// while the wall timeline itself is explicitly outside the contract.
#[test]
fn wall_channel_is_outside_the_contract() {
    let s = Scenario::broot(TopologyConfig::tiny(84), 7);
    let hl = Hitlist::from_internet(&s.world, &HitlistConfig::default());
    let plain = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &ScanConfig::default(),
        0xe903,
    );
    assert!(
        plain.obs.wall_flight.is_empty(),
        "no wall channel attached, so no wall timeline"
    );
    assert!(!plain.obs.flight.is_empty(), "sim channel is always on");

    let wall_config = ScanConfig {
        wall: Some(vp_obs::WallChannel::new(std::sync::Arc::new(
            CountingClock(std::sync::atomic::AtomicU64::new(0)),
        ))),
        ..ScanConfig::default()
    };
    let serial_wall = run_scan(
        &s.world,
        &hl,
        &s.announcement,
        Box::new(StaticOracle::new(s.routing())),
        FaultConfig::default(),
        SimTime::ZERO,
        &wall_config,
        0xe903,
    );
    assert_identical(&plain, &serial_wall, "serial+wall");
    assert!(
        !serial_wall.obs.wall_flight.is_empty(),
        "attached channel must record the serial phase intervals"
    );

    for shards in SHARD_COUNTS {
        let sharded = run_scan_sharded_on(
            &ShardExecutor::new(shards),
            &s.world,
            &hl,
            &s.announcement,
            &|| Box::new(StaticOracle::new(s.routing())),
            FaultConfig::default(),
            SimTime::ZERO,
            &wall_config,
            0xe903,
            shards,
        );
        assert_identical(&plain, &sharded, &format!("wall/K={shards}"));
        let compute_shards: std::collections::BTreeSet<u32> = sharded
            .obs
            .wall_flight
            .spans
            .iter()
            .filter(|sp| sp.name == "shard.compute")
            .filter_map(|sp| sp.shard)
            .collect();
        assert_eq!(
            compute_shards.len(),
            shards,
            "K={shards}: every shard must report a compute interval"
        );
    }
}

// ---------------------------------------------------------------------
// Merge algebra: the properties the shard merge relies on.
// ---------------------------------------------------------------------

/// Builds `parts` disjoint catchment maps out of one generated entry set.
fn disjoint_maps(entries: &[(u32, u8)], parts: usize) -> Vec<CatchmentMap> {
    // Dedup blocks so the disjointness precondition holds.
    let mut uniq: std::collections::BTreeMap<u32, u8> = std::collections::BTreeMap::new();
    for &(b, s) in entries {
        uniq.insert(b, s);
    }
    let uniq: Vec<(u32, u8)> = uniq.into_iter().collect();
    let chunk = uniq.len().div_ceil(parts).max(1);
    (0..parts)
        .map(|k| {
            let slice = uniq.iter().skip(k * chunk).take(chunk);
            CatchmentMap::from_pairs(
                "m",
                slice.map(|&(b, s)| (Block24(b), SiteId(s))),
            )
        })
        .collect()
}

fn maps_equal(a: &CatchmentMap, b: &CatchmentMap) -> bool {
    a.len() == b.len() && a.iter().all(|(blk, site)| b.site_of(blk) == Some(site))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging disjoint catchment maps is associative:
    /// (a ∪ b) ∪ c == a ∪ (b ∪ c).
    // vp-lint: merge-tested(CatchmentMap::merge)
    #[test]
    fn catchment_merge_is_associative(
        entries in prop::collection::vec((any::<u32>(), 0u8..9), 0..64),
    ) {
        let parts = disjoint_maps(&entries, 3);
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

        let mut left = a.clone();
        left.merge(b);
        left.merge(c);

        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);

        prop_assert!(maps_equal(&left, &right));
    }

    /// Merging disjoint catchment maps is order-insensitive: any
    /// permutation of the shard order yields the same map.
    #[test]
    fn catchment_merge_is_order_insensitive(
        entries in prop::collection::vec((any::<u32>(), 0u8..9), 0..64),
        rot in 0usize..4,
    ) {
        let parts = disjoint_maps(&entries, 4);

        let mut forward = CatchmentMap::from_pairs("m", std::iter::empty());
        for p in &parts {
            forward.merge(p);
        }

        let mut rotated = CatchmentMap::from_pairs("m", std::iter::empty());
        for i in 0..parts.len() {
            rotated.merge(&parts[(i + rot) % parts.len()]);
        }

        let mut reversed = CatchmentMap::from_pairs("m", std::iter::empty());
        for p in parts.iter().rev() {
            reversed.merge(p);
        }

        prop_assert!(maps_equal(&forward, &rotated));
        prop_assert!(maps_equal(&forward, &reversed));
    }

    /// Cleaning-counter merging is associative and commutative, and
    /// preserves the per-pass consistency invariant.
    // vp-lint: merge-tested(CleaningStats::merge)
    #[test]
    fn cleaning_merge_is_associative_and_commutative(
        counts in prop::collection::vec(((0u64..500, 0u64..500), (0u64..500, 0u64..500), 0u64..500), 1..6),
    ) {
        let stats: Vec<CleaningStats> = counts
            .iter()
            .map(|&((d, f), (u, l), k)| CleaningStats {
                total: d + f + u + l + k,
                duplicates: d,
                foreign: f,
                unprobed_source: u,
                late: l,
                kept: k,
            })
            .collect();

        // Forward fold.
        let mut forward = CleaningStats::default();
        for s in &stats {
            forward.merge(s);
        }
        // Reverse fold.
        let mut reverse = CleaningStats::default();
        for s in stats.iter().rev() {
            reverse.merge(s);
        }
        prop_assert_eq!(forward, reverse);
        prop_assert!(forward.is_consistent());

        // Associativity on the first three (pad with defaults).
        let a = *stats.first().unwrap_or(&CleaningStats::default());
        let b = *stats.get(1).unwrap_or(&CleaningStats::default());
        let c = *stats.get(2).unwrap_or(&CleaningStats::default());
        let mut ab = a;
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }
}
