//! # Verfploeter: broad and load-aware anycast mapping
//!
//! A reproduction of the measurement system of de Vries et al., *"Broad and
//! Load-Aware Anycast Mapping with Verfploeter"* (IMC 2017). Verfploeter
//! maps IP anycast catchments by inverting the usual measurement direction:
//! the anycast service itself pings millions of hitlist targets **from the
//! anycast prefix**; every ICMP Echo Reply is routed by BGP back to
//! whichever anycast site the replying network belongs to, so the reply's
//! *arrival site* is the catchment observation. Millions of ordinary
//! ping-responding hosts thereby act as passive vantage points — ~430× the
//! coverage of RIPE Atlas — and weighting the resulting catchment map with
//! historical DNS query logs yields calibrated per-site load predictions.
//!
//! ## Pipeline (one measurement)
//!
//! 1. [`prober`] — emit one ICMP Echo Request per hitlist entry, in
//!    pseudorandom order, paced by a token bucket (§3.1 of the paper).
//! 2. [`collector`] — capture replies concurrently at every site and
//!    forward them, tagged with their site, to a central point (§3.1).
//! 3. [`cleaning`] — drop duplicates, replies from addresses that were
//!    never probed, replies with foreign identifiers, and late replies
//!    (§4's data cleaning).
//! 4. [`catchment`] — fold cleaned replies into a block → site map.
//!
//! [`scan::run_scan`] runs the whole pipeline against the discrete-event
//! simulator.
//!
//! ## Analyses (the paper's evaluation)
//!
//! * [`coverage`] — Verfploeter vs Atlas coverage accounting (Table 4) and
//!   geographic map data (Figs. 2–3).
//! * [`load`] — load-weighted catchments: mappability (Table 5), per-site
//!   load split and map data (Fig. 4).
//! * [`predict`] — predicted vs measured per-site load (Table 6), the
//!   prepending sweep (Fig. 5) and hourly prepending series (Fig. 6).
//! * [`stability`] — 24-hour stability classification (Fig. 9) and
//!   flip-heavy ASes (Table 7).
//! * [`divisions`] — catchment splits inside ASes and prefixes
//!   (Figs. 7–8).
//! * [`placement`] — §7's future-work extension: RTT-based suggestions for
//!   where a new anycast site would help.
//! * [`report`] — plain-text table rendering used by the experiment
//!   binaries.

#![deny(unused_must_use)]

pub mod catchment;
pub mod cleaning;
pub mod collector;
pub mod coverage;
pub mod divisions;
pub mod load;
pub mod placement;
pub mod predict;
pub mod prober;
pub mod report;
pub mod rtt;
pub mod scan;
pub mod stability;

pub use catchment::CatchmentMap;
pub use rtt::RttTable;
pub use cleaning::{clean, CleaningStats};
pub use collector::{forward_to_central, forward_to_central_on, RawReply};
pub use prober::{ProbeConfig, Prober};
pub use scan::{run_scan, run_scan_sharded, run_scan_sharded_on, ScanConfig, ScanObs, ScanResult};
