//! Site-placement suggestion from measured RTTs — the paper's §7 closer:
//! "it is possible that RTTs of Verfploeter measurements can be used to
//! suggest where new anycast sites would be helpful".
//!
//! Every cleaned reply carries a round-trip time (probe out, reply back via
//! the block's catchment site). Blocks whose RTT is persistently high are
//! poorly served; clustering them by country, weighted by their query load,
//! ranks the places where a new site would help most.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_dns::QueryLog;
use vp_geo::{CountryId, GeoDb};
use vp_net::conv;
use vp_net::SimDuration;

use crate::rtt::RttTable;

/// One candidate location for a new site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementSuggestion {
    pub country: CountryId,
    /// Blocks in this country whose RTT exceeds the threshold.
    pub high_rtt_blocks: u64,
    /// Median RTT of those blocks.
    pub median_rtt: SimDuration,
    /// Daily queries originating from those blocks (0 without a log).
    pub affected_queries: f64,
}

/// Ranks countries by how much badly served traffic a new site there would
/// capture. `threshold` marks a block as badly served; `load` (optional)
/// weights blocks by their query volume; `top` limits the result length.
pub fn suggest_sites(
    rtts: &RttTable,
    geodb: &GeoDb,
    load: Option<&QueryLog>,
    threshold: SimDuration,
    top: usize,
) -> Vec<PlacementSuggestion> {
    struct Acc {
        rtts: Vec<SimDuration>,
        queries: f64,
    }
    let mut per_country: BTreeMap<CountryId, Acc> = BTreeMap::new();
    for (block, rtt) in rtts.iter() {
        if rtt < threshold {
            continue;
        }
        let Some(loc) = geodb.locate(block) else {
            continue;
        };
        let acc = per_country.entry(loc.country).or_insert(Acc {
            rtts: Vec::new(),
            queries: 0.0,
        });
        acc.rtts.push(rtt);
        acc.queries += load.map_or(0.0, |l| l.daily(block));
    }
    let mut out: Vec<PlacementSuggestion> = per_country
        .into_iter()
        .map(|(country, mut acc)| {
            acc.rtts.sort_unstable();
            PlacementSuggestion {
                country,
                high_rtt_blocks: acc.rtts.len() as u64,
                median_rtt: acc.rtts[acc.rtts.len() / 2], // vp-lint: allow(g1): groups are created on first push, so rtts is non-empty.
                affected_queries: acc.queries,
            }
        })
        .collect();
    // Rank by affected traffic when a log is present, else by block count;
    // country id breaks ties deterministically.
    out.sort_by(|a, b| {
        b.affected_queries
            .total_cmp(&a.affected_queries)
            .then(b.high_rtt_blocks.cmp(&a.high_rtt_blocks))
            .then(a.country.cmp(&b.country))
    });
    out.truncate(top);
    out
}

/// Summary RTT statistics of a scan: `(p50, p90, max)` over mapped blocks.
pub fn rtt_percentiles(rtts: &RttTable) -> Option<(SimDuration, SimDuration, SimDuration)> {
    if rtts.is_empty() {
        return None;
    }
    let mut v: Vec<SimDuration> = rtts.values().collect();
    v.sort_unstable();
    let p90 = conv::index(conv::sat_f64_to_u32(v.len() as f64 * 0.9)).min(v.len() - 1);
    let last = *v.last()?;
    Some((v[v.len() / 2], v[p90], last)) // vp-lint: allow(g1): emptiness returns early above and p90 is clamped to len-1.
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_geo::GeoLoc;
    use vp_net::Block24;

    fn geodb_two_countries() -> GeoDb {
        let mut db = GeoDb::new();
        // Blocks 0..10 in country 0; 10..20 in country 1.
        for i in 0..20u32 {
            db.insert(
                Block24(i),
                GeoLoc {
                    country: CountryId(if i < 10 { 0 } else { 1 }),
                    lat: 0.0,
                    lon: 0.0,
                },
            );
        }
        db
    }

    fn rtts(ms_by_block: &[(u32, u64)]) -> RttTable {
        RttTable::from_pairs(
            ms_by_block
                .iter()
                .map(|&(b, ms)| (Block24(b), SimDuration::from_millis(ms))),
        )
    }

    #[test]
    fn high_rtt_country_is_suggested_first() {
        let db = geodb_two_countries();
        // Country 1's blocks are all slow; country 0's fast except one.
        let mut rows = Vec::new();
        for i in 0..10u32 {
            rows.push((i, 20u64));
        }
        for i in 10..20u32 {
            rows.push((i, 250u64));
        }
        rows.push((3, 300)); // overwrite one fast block as slow
        let r = rtts(&rows);
        let s = suggest_sites(&r, &db, None, SimDuration::from_millis(150), 5);
        assert!(!s.is_empty());
        assert_eq!(s[0].country, CountryId(1));
        assert_eq!(s[0].high_rtt_blocks, 10);
        assert!(s[0].median_rtt >= SimDuration::from_millis(150));
        // Country 0 appears after, with exactly one slow block.
        assert_eq!(s[1].country, CountryId(0));
        assert_eq!(s[1].high_rtt_blocks, 1);
    }

    #[test]
    fn threshold_filters_everything_when_high() {
        let db = geodb_two_countries();
        let r = rtts(&[(0, 10), (11, 20)]);
        let s = suggest_sites(&r, &db, None, SimDuration::from_secs(5), 5);
        assert!(s.is_empty());
    }

    #[test]
    fn unlocatable_blocks_are_skipped() {
        let db = geodb_two_countries();
        let r = rtts(&[(99, 500)]); // block 99 not in the db
        let s = suggest_sites(&r, &db, None, SimDuration::from_millis(100), 5);
        assert!(s.is_empty());
    }

    #[test]
    fn top_limits_results() {
        let db = geodb_two_countries();
        let r = rtts(&[(0, 500), (11, 500)]);
        let s = suggest_sites(&r, &db, None, SimDuration::from_millis(100), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn percentiles_ordered() {
        let r = rtts(&[(0, 10), (1, 20), (2, 30), (3, 40), (4, 1000)]);
        let (p50, p90, max) = rtt_percentiles(&r).unwrap();
        assert!(p50 <= p90 && p90 <= max);
        assert_eq!(max, SimDuration::from_millis(1000));
        assert!(rtt_percentiles(&RttTable::default()).is_none());
    }
}
