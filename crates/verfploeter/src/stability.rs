//! Anycast stability over time (Fig. 9, Table 7).
//!
//! §6.3: the catchment of the Tangled testbed is measured every 15 minutes
//! for 24 hours (96 rounds); VPs are classified per round against the
//! previous round as **stable**, **flipped** (same VP, different site),
//! **to-NR** (stopped responding) or **from-NR** (started responding).
//! Flips are rare (~0.1% per round) but concentrated: one AS contributes
//! half of them.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use vp_net::conv;
use vp_net::{Asn, Block24};
use vp_topology::Internet;

use crate::catchment::CatchmentMap;

/// Per-round classification counts (one Fig. 9 data point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundDelta {
    /// Round index (1-based: deltas compare round r against r-1).
    pub round: u32,
    pub stable: u64,
    pub flipped: u64,
    pub to_nr: u64,
    pub from_nr: u64,
}

/// Classifies consecutive measurement rounds. Returns one delta per round
/// after the first.
pub fn classify_rounds(rounds: &[CatchmentMap]) -> Vec<RoundDelta> {
    rounds
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            let (prev, cur) = (&w[0], &w[1]); // vp-lint: allow(g1): windows(2) yields exactly two elements.
            let mut delta = RoundDelta {
                round: conv::sat_u32(i) + 1,
                stable: 0,
                flipped: 0,
                to_nr: 0,
                from_nr: 0,
            };
            for (block, site) in prev.iter() {
                match cur.site_of(block) {
                    Some(s) if s == site => delta.stable += 1,
                    Some(_) => delta.flipped += 1,
                    None => delta.to_nr += 1,
                }
            }
            delta.from_nr = cur.iter().filter(|(b, _)| prev.site_of(*b).is_none()).count() as u64;
            delta
        })
        .collect()
}

/// Blocks that ever changed site across the rounds — the "unstable VPs"
/// §6.2 removes before the AS-division analysis.
pub fn unstable_blocks(rounds: &[CatchmentMap]) -> BTreeSet<Block24> {
    let mut first_site: BTreeMap<Block24, vp_bgp::SiteId> = BTreeMap::new();
    let mut unstable = BTreeSet::new();
    for round in rounds {
        for (block, site) in round.iter() {
            match first_site.entry(block) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    if *e.get() != site {
                        unstable.insert(block);
                    }
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(site);
                }
            }
        }
    }
    unstable
}

/// One row of Table 7: an AS and its share of all site flips.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlipRow {
    pub asn: Asn,
    /// Distinct /24s of this AS that flipped at least once.
    pub blocks: u64,
    /// Total flips observed from this AS.
    pub flips: u64,
    /// Fraction of all flips.
    pub frac: f64,
}

/// Per-AS flip accounting across rounds (Table 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlipTable {
    /// Rows sorted by flips, descending.
    pub rows: Vec<FlipRow>,
    pub total_flips: u64,
    pub total_blocks: u64,
}

impl FlipTable {
    /// The top `n` rows plus an aggregate "other" row, as the paper prints.
    pub fn top_with_other(&self, n: usize) -> (Vec<FlipRow>, FlipRow) {
        let top: Vec<FlipRow> = self.rows.iter().take(n).cloned().collect();
        let other_flips: u64 = self.rows.iter().skip(n).map(|r| r.flips).sum();
        let other_blocks: u64 = self.rows.iter().skip(n).map(|r| r.blocks).sum();
        let other = FlipRow {
            asn: Asn(u32::MAX),
            blocks: other_blocks,
            flips: other_flips,
            frac: other_flips as f64 / self.total_flips.max(1) as f64,
        };
        (top, other)
    }

    /// Number of distinct ASes with at least one flip.
    pub fn flipping_ases(&self) -> usize {
        self.rows.len()
    }
}

/// Attributes every flip across rounds to the origin AS of the flipping
/// block.
pub fn flips_by_as(rounds: &[CatchmentMap], world: &Internet) -> FlipTable {
    let mut flips: BTreeMap<Asn, u64> = BTreeMap::new();
    let mut blocks: BTreeMap<Asn, BTreeSet<Block24>> = BTreeMap::new();
    for w in rounds.windows(2) {
        let (prev, cur) = (&w[0], &w[1]); // vp-lint: allow(g1): windows(2) yields exactly two elements.
        for (block, site) in prev.iter() {
            if let Some(s) = cur.site_of(block) {
                if s != site {
                    if let Some(info) = world.block(block) {
                        *flips.entry(info.origin).or_insert(0) += 1;
                        blocks.entry(info.origin).or_default().insert(block);
                    }
                }
            }
        }
    }
    let total_flips: u64 = flips.values().sum();
    let mut rows: Vec<FlipRow> = flips
        .into_iter()
        .map(|(asn, f)| FlipRow {
            asn,
            blocks: blocks[&asn].len() as u64, // vp-lint: allow(g1): every flip ASN was keyed into blocks by the same pass that counted its flips.
            flips: f,
            frac: f as f64 / total_flips.max(1) as f64,
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.flips), r.asn));
    let total_blocks = rows.iter().map(|r| r.blocks).sum();
    FlipTable {
        rows,
        total_flips,
        total_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_bgp::SiteId;
    use vp_topology::TopologyConfig;

    fn map(name: &str, pairs: &[(u32, u8)]) -> CatchmentMap {
        CatchmentMap::from_pairs(name, pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))))
    }

    #[test]
    fn classification_partitions_previous_round() {
        let r0 = map("r0", &[(1, 0), (2, 0), (3, 1), (4, 1)]);
        let r1 = map("r1", &[(1, 0), (2, 1), (4, 1), (5, 0)]);
        let deltas = classify_rounds(&[r0, r1]);
        assert_eq!(deltas.len(), 1);
        let d = deltas[0];
        assert_eq!(d.stable, 2); // blocks 1, 4
        assert_eq!(d.flipped, 1); // block 2
        assert_eq!(d.to_nr, 1); // block 3
        assert_eq!(d.from_nr, 1); // block 5
        // Partition invariant: stable + flipped + to_nr = |prev|.
        assert_eq!(d.stable + d.flipped + d.to_nr, 4);
    }

    #[test]
    fn single_round_has_no_deltas() {
        assert!(classify_rounds(&[map("r0", &[(1, 0)])]).is_empty());
        assert!(classify_rounds(&[]).is_empty());
    }

    #[test]
    fn unstable_blocks_found_across_any_rounds() {
        let r0 = map("r0", &[(1, 0), (2, 0)]);
        let r1 = map("r1", &[(1, 0), (2, 1)]);
        let r2 = map("r2", &[(1, 0), (2, 0)]);
        let unstable = unstable_blocks(&[r0, r1, r2]);
        assert_eq!(unstable.len(), 1);
        assert!(unstable.contains(&Block24(2)));
    }

    #[test]
    fn flips_attributed_to_origin_as() {
        let w = Internet::generate(TopologyConfig::tiny(121));
        // Flip two blocks of (possibly) different ASes back and forth over
        // 3 rounds -> 2 flips per block.
        let b0 = w.blocks[0].block;
        let b1 = w.blocks[1].block;
        let r0 = CatchmentMap::from_pairs("r0", [(b0, SiteId(0)), (b1, SiteId(0))]);
        let r1 = CatchmentMap::from_pairs("r1", [(b0, SiteId(1)), (b1, SiteId(0))]);
        let r2 = CatchmentMap::from_pairs("r2", [(b0, SiteId(0)), (b1, SiteId(1))]);
        let table = flips_by_as(&[r0, r1, r2], &w);
        assert_eq!(table.total_flips, 3); // b0 flips twice, b1 once
        let frac_sum: f64 = table.rows.iter().map(|r| r.frac).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
        let (top, other) = table.top_with_other(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].flips + other.flips, 3);
    }

    #[test]
    fn stable_series_has_no_flips() {
        let r = map("r", &[(1, 0), (2, 1), (3, 0)]);
        let rounds = vec![r.clone(), r.clone(), r];
        let deltas = classify_rounds(&rounds);
        assert!(deltas.iter().all(|d| d.flipped == 0 && d.to_nr == 0 && d.from_nr == 0));
        assert!(unstable_blocks(&rounds).is_empty());
        let w = Internet::generate(TopologyConfig::tiny(122));
        let t = flips_by_as(&rounds, &w);
        assert_eq!(t.total_flips, 0);
        assert_eq!(t.flipping_ases(), 0);
    }
}
