//! Coverage accounting (Table 4) and geographic map data (Figs. 2–3).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use vp_bgp::SiteId;
use vp_geo::{BinnedMap, GeoDb};
use vp_hitlist::Hitlist;
use vp_net::Block24;

use crate::catchment::CatchmentMap;

/// The rows of Table 4: coverage of the same anycast service from the
/// perspective of the two measurement systems.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoverageReport {
    // Atlas, in VPs.
    pub atlas_vps_considered: u64,
    pub atlas_vps_responding: u64,
    // Atlas, in /24 blocks.
    pub atlas_blocks_considered: u64,
    pub atlas_blocks_responding: u64,
    pub atlas_blocks_geolocatable: u64,
    // Verfploeter, in /24 blocks.
    pub vp_blocks_considered: u64,
    pub vp_blocks_responding: u64,
    pub vp_blocks_no_location: u64,
    pub vp_blocks_geolocatable: u64,
    // Overlap.
    pub atlas_unique_blocks: u64,
    pub vp_unique_blocks: u64,
    pub shared_blocks: u64,
}

impl CoverageReport {
    /// The paper's headline: how many times more blocks Verfploeter sees.
    pub fn coverage_ratio(&self) -> f64 {
        self.vp_blocks_responding as f64 / self.atlas_blocks_responding.max(1) as f64
    }

    /// Fraction of Atlas blocks also seen by Verfploeter (~77% in Table 4).
    pub fn atlas_overlap_fraction(&self) -> f64 {
        self.shared_blocks as f64 / self.atlas_blocks_responding.max(1) as f64
    }
}

/// Inputs describing one Atlas scan for coverage accounting, decoupled from
/// the `vp-atlas` crate (which depends on this one for nothing — the
/// experiment binaries adapt its result type into this struct).
#[derive(Debug, Clone)]
pub struct AtlasCoverage {
    pub vps_considered: u64,
    pub vps_responding: u64,
    pub blocks_considered: u64,
    /// Blocks with at least one responding VP.
    pub responding_blocks: BTreeSet<Block24>,
}

/// Computes Table 4 from one Verfploeter scan and one Atlas scan of the
/// same service.
pub fn coverage(
    catchments: &CatchmentMap,
    hitlist: &Hitlist,
    geodb: &GeoDb,
    atlas: &AtlasCoverage,
) -> CoverageReport {
    let vp_responding: BTreeSet<Block24> = catchments.iter().map(|(b, _)| b).collect();
    let vp_no_location = vp_responding
        .iter()
        .filter(|b| geodb.locate(**b).is_none())
        .count() as u64;
    let shared = atlas
        .responding_blocks
        .iter()
        .filter(|b| vp_responding.contains(*b))
        .count() as u64;
    let atlas_responding = atlas.responding_blocks.len() as u64;
    let atlas_geolocatable = atlas
        .responding_blocks
        .iter()
        .filter(|b| geodb.locate(**b).is_some())
        .count() as u64;

    CoverageReport {
        atlas_vps_considered: atlas.vps_considered,
        atlas_vps_responding: atlas.vps_responding,
        atlas_blocks_considered: atlas.blocks_considered,
        atlas_blocks_responding: atlas_responding,
        atlas_blocks_geolocatable: atlas_geolocatable,
        vp_blocks_considered: hitlist.len() as u64,
        vp_blocks_responding: vp_responding.len() as u64,
        vp_blocks_no_location: vp_no_location,
        vp_blocks_geolocatable: vp_responding.len() as u64 - vp_no_location,
        atlas_unique_blocks: atlas_responding - shared,
        vp_unique_blocks: vp_responding.len() as u64 - shared,
        shared_blocks: shared,
    }
}

/// Bins a catchment map geographically: per 2° bin, blocks per site — the
/// data behind Figs. 2b/3b. Unlocatable blocks are skipped, as in the
/// paper.
pub fn catchment_bins(catchments: &CatchmentMap, geodb: &GeoDb) -> BinnedMap<SiteId> {
    let mut bins = BinnedMap::new();
    for (block, site) in catchments.iter() {
        if let Some(loc) = geodb.locate(block) {
            bins.add(loc.lat, loc.lon, site, 1.0);
        }
    }
    bins
}

/// Bins per-block site observations with an explicit weight each — used
/// for Atlas VP maps (Figs. 2a/3a), where the weight is VPs per block.
pub fn weighted_bins(
    observations: impl IntoIterator<Item = (Block24, SiteId, f64)>,
    geodb: &GeoDb,
) -> BinnedMap<SiteId> {
    let mut bins = BinnedMap::new();
    for (block, site, w) in observations {
        if let Some(loc) = geodb.locate(block) {
            bins.add(loc.lat, loc.lon, site, w);
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_hitlist::HitlistConfig;
    use vp_topology::{Internet, TopologyConfig};

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(91))
    }

    fn synthetic_catchments(w: &Internet, n: usize) -> CatchmentMap {
        CatchmentMap::from_pairs(
            "t",
            w.blocks
                .iter()
                .take(n)
                .map(|b| (b.block, SiteId((b.block.0 % 2) as u8))),
        )
    }

    #[test]
    fn table4_accounting_is_consistent() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        let catchments = synthetic_catchments(&w, 500);
        let atlas_blocks: BTreeSet<Block24> =
            w.blocks.iter().take(60).map(|b| b.block).collect();
        let atlas = AtlasCoverage {
            vps_considered: 80,
            vps_responding: 70,
            blocks_considered: 65,
            responding_blocks: atlas_blocks,
        };
        let r = coverage(&catchments, &hl, &w.geodb, &atlas);
        assert_eq!(r.vp_blocks_considered, hl.len() as u64);
        assert_eq!(r.vp_blocks_responding, 500);
        assert_eq!(
            r.vp_blocks_geolocatable + r.vp_blocks_no_location,
            r.vp_blocks_responding
        );
        // The first 60 blocks are all within the catchment map's 500.
        assert_eq!(r.shared_blocks, 60);
        assert_eq!(r.atlas_unique_blocks, 0);
        assert_eq!(r.vp_unique_blocks, 440);
        assert!((r.atlas_overlap_fraction() - 1.0).abs() < 1e-12);
        assert!((r.coverage_ratio() - 500.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sets_have_unique_blocks() {
        let w = world();
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        let catchments = synthetic_catchments(&w, 100);
        let atlas_blocks: BTreeSet<Block24> = w
            .blocks
            .iter()
            .skip(200)
            .take(50)
            .map(|b| b.block)
            .collect();
        let atlas = AtlasCoverage {
            vps_considered: 50,
            vps_responding: 50,
            blocks_considered: 50,
            responding_blocks: atlas_blocks,
        };
        let r = coverage(&catchments, &hl, &w.geodb, &atlas);
        assert_eq!(r.shared_blocks, 0);
        assert_eq!(r.atlas_unique_blocks, 50);
        assert_eq!(r.vp_unique_blocks, 100);
        assert_eq!(r.atlas_overlap_fraction(), 0.0);
    }

    #[test]
    fn bins_cover_located_blocks() {
        let w = world();
        let catchments = synthetic_catchments(&w, 300);
        let bins = catchment_bins(&catchments, &w.geodb);
        let located = catchments
            .iter()
            .filter(|(b, _)| w.geodb.locate(*b).is_some())
            .count();
        assert!((bins.total() - located as f64).abs() < 1e-9);
        assert!(bins.bin_count() > 1);
    }

    #[test]
    fn weighted_bins_respect_weights() {
        let w = world();
        let obs: Vec<(Block24, SiteId, f64)> = w
            .blocks
            .iter()
            .take(10)
            .map(|b| (b.block, SiteId(0), 2.0))
            .collect();
        let bins = weighted_bins(obs.clone(), &w.geodb);
        let located = obs
            .iter()
            .filter(|(b, _, _)| w.geodb.locate(*b).is_some())
            .count();
        assert!((bins.total() - 2.0 * located as f64).abs() < 1e-9);
    }
}
