//! Data cleaning: §4's pipeline over the raw central reply stream.
//!
//! "We remove from our dataset the duplicate results, replies from
//! IP-addresses that we did not send a request to, and late replies (15
//! minutes after the start of the measurement). Duplicates ... account for
//! approximately 2% of all replies."

use serde::{Deserialize, Serialize};
use vp_hitlist::Hitlist;
use vp_net::{SimDuration, SimTime};

use crate::collector::RawReply;

/// Counters over one cleaning pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleaningStats {
    /// Replies entering the pipeline.
    pub total: u64,
    /// Dropped: a reply for this hitlist index was already accepted.
    pub duplicates: u64,
    /// Dropped: no/foreign payload or foreign ICMP identifier.
    pub foreign: u64,
    /// Dropped: source address was never probed (includes aliased replies).
    pub unprobed_source: u64,
    /// Dropped: arrived after the cutoff.
    pub late: u64,
    /// Replies surviving all filters.
    pub kept: u64,
}

/// A cleaned catchment observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanReply {
    pub site: vp_bgp::SiteId,
    pub at: SimTime,
    /// Hitlist index (identifies the observed block).
    pub index: u64,
}

/// Runs the cleaning pipeline over the central reply stream.
///
/// A reply is kept iff its payload decodes to a hitlist index within
/// bounds, its ICMP identifier matches this round's `ident`, its source is
/// exactly the probed target for that index, it arrived within `cutoff` of
/// `start`, and it is the first accepted reply for its index.
pub fn clean(
    replies: &[RawReply],
    hitlist: &Hitlist,
    ident: u16,
    start: SimTime,
    cutoff: SimDuration,
) -> (Vec<CleanReply>, CleaningStats) {
    let deadline = start + cutoff;
    let mut stats = CleaningStats::default();
    // Duplicate filter: indices are validated < hitlist.len() before the
    // dedup check, so a pre-sized bitset replaces the historical
    // `BTreeSet<u64>` — two allocations per pass instead of one tree node
    // per ~dozen kept replies (rule p1; the allocation witness counts it).
    // Same keep-first semantics: a bit tests set iff an earlier reply for
    // that index was accepted.
    let mut seen: Vec<u64> = Vec::with_capacity(hitlist.len() / 64 + 1);
    seen.resize(hitlist.len() / 64 + 1, 0);
    let mut out = Vec::with_capacity(replies.len());
    for r in replies {
        stats.total += 1;
        let Some(index) = r.index.filter(|_| r.ident == ident) else {
            stats.foreign += 1;
            continue;
        };
        if index >= hitlist.len() as u64 {
            stats.foreign += 1;
            continue;
        }
        if hitlist.entry(vp_net::conv::sat_usize(index)).target != r.src {
            stats.unprobed_source += 1;
            continue;
        }
        if r.at > deadline {
            stats.late += 1;
            continue;
        }
        let word = vp_net::conv::sat_usize(index / 64);
        let bit = 1u64 << (index % 64);
        if seen[word] & bit != 0 { // vp-lint: allow(g1): index < hitlist.len() was checked above, and seen spans hitlist.len() bits.
            stats.duplicates += 1;
            continue;
        }
        seen[word] |= bit; // vp-lint: allow(g1): same bound as the test above.
        stats.kept += 1;
        out.push(CleanReply {
            site: r.site,
            at: r.at,
            index,
        });
    }
    (out, stats)
}

impl CleaningStats {
    /// Sanity: every reply is accounted for in exactly one bucket.
    pub fn is_consistent(&self) -> bool {
        self.total == self.duplicates + self.foreign + self.unprobed_source + self.late + self.kept
    }

    /// Accumulates another pass's counters into this one.
    ///
    /// Used by the sharded scan path: each shard cleans its own slice of
    /// the central stream, and because a reply can only ever compete with
    /// replies for the same hitlist index (which all live in one shard),
    /// the per-shard counters sum exactly to the serial pass's counters.
    /// Field-wise addition is commutative and associative, so merge order
    /// does not matter.
    pub fn merge(&mut self, other: &CleaningStats) {
        self.total += other.total;
        self.duplicates += other.duplicates;
        self.foreign += other.foreign;
        self.unprobed_source += other.unprobed_source;
        self.late += other.late;
        self.kept += other.kept;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_bgp::SiteId;
    use vp_hitlist::HitlistConfig;
    use vp_net::Ipv4Addr;
    use vp_topology::{Internet, TopologyConfig};

    fn setup() -> (Internet, Hitlist) {
        let w = Internet::generate(TopologyConfig::tiny(71));
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        (w, hl)
    }

    fn reply(hl: &Hitlist, index: u64, at: u64, ident: u16) -> RawReply {
        RawReply {
            site: SiteId(0),
            at: SimTime(at),
            src: hl.entry(index as usize).target,
            ident,
            index: Some(index),
        }
    }

    #[test]
    fn valid_replies_pass() {
        let (_, hl) = setup();
        let replies = vec![reply(&hl, 0, 100, 7), reply(&hl, 1, 200, 7)];
        let (kept, stats) = clean(&replies, &hl, 7, SimTime::ZERO, SimDuration::from_mins(15));
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.kept, 2);
        assert!(stats.is_consistent());
    }

    #[test]
    fn duplicates_keep_first() {
        let (_, hl) = setup();
        let replies = vec![
            reply(&hl, 5, 100, 7),
            reply(&hl, 5, 150, 7),
            reply(&hl, 5, 160, 7),
        ];
        let (kept, stats) = clean(&replies, &hl, 7, SimTime::ZERO, SimDuration::from_mins(15));
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].at, SimTime(100));
        assert_eq!(stats.duplicates, 2);
        assert!(stats.is_consistent());
    }

    #[test]
    fn foreign_ident_and_payload_dropped() {
        let (_, hl) = setup();
        let mut r1 = reply(&hl, 0, 100, 9); // wrong round ident
        let mut r2 = reply(&hl, 1, 100, 7);
        r2.index = None; // no/foreign payload
        r1.ident = 9;
        let (kept, stats) = clean(
            &[r1, r2],
            &hl,
            7,
            SimTime::ZERO,
            SimDuration::from_mins(15),
        );
        assert!(kept.is_empty());
        assert_eq!(stats.foreign, 2);
        assert!(stats.is_consistent());
    }

    #[test]
    fn out_of_bounds_index_dropped() {
        let (_, hl) = setup();
        let r = RawReply {
            site: SiteId(0),
            at: SimTime(1),
            src: Ipv4Addr(1),
            ident: 7,
            index: Some(hl.len() as u64 + 5),
        };
        let (kept, stats) = clean(&[r], &hl, 7, SimTime::ZERO, SimDuration::from_mins(15));
        assert!(kept.is_empty());
        assert_eq!(stats.foreign, 1);
    }

    #[test]
    fn aliased_sources_dropped() {
        let (_, hl) = setup();
        let mut r = reply(&hl, 3, 100, 7);
        // Reply from a different address in the same block.
        r.src = Ipv4Addr(r.src.0 ^ 0x0f);
        let (kept, stats) = clean(&[r], &hl, 7, SimTime::ZERO, SimDuration::from_mins(15));
        assert!(kept.is_empty());
        assert_eq!(stats.unprobed_source, 1);
    }

    #[test]
    fn late_replies_dropped() {
        let (_, hl) = setup();
        let cutoff = SimDuration::from_mins(15);
        let on_time = reply(&hl, 0, cutoff.as_nanos(), 7); // exactly at cutoff: kept
        let late = reply(&hl, 1, cutoff.as_nanos() + 1, 7);
        let (kept, stats) = clean(&[on_time, late], &hl, 7, SimTime::ZERO, cutoff);
        assert_eq!(kept.len(), 1);
        assert_eq!(stats.late, 1);
        assert!(stats.is_consistent());
    }

    #[test]
    fn cutoff_is_relative_to_start() {
        let (_, hl) = setup();
        let start = SimTime::ZERO + SimDuration::from_hours(2);
        let r = reply(&hl, 0, (start + SimDuration::from_mins(10)).0, 7);
        let (kept, _) = clean(&[r], &hl, 7, start, SimDuration::from_mins(15));
        assert_eq!(kept.len(), 1);
    }
}
