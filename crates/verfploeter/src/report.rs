//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple fixed-width text table with right-aligned numeric columns.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it may be shorter than the header (padded empty).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.headers.len(),
            "row has more cells than headers"
        );
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table. First column left-aligned, the rest right-aligned.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if let Some(w) = widths.get_mut(i) {
                    *w = (*w).max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let width = widths.get(i).copied().unwrap_or(0);
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}");
                } else {
                    let _ = write!(out, "{cell:>width$}");
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Formats a count with thousands separators: `1234567 -> "1,234,567"`.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a fraction as a percentage with one decimal: `0.824 -> "82.4%"`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a large count with an SI-ish suffix as the paper does
/// (`2.34G`, `27.1k`).
pub fn si(x: f64) -> String {
    let (v, suffix) = if x >= 1e9 {
        (x / 1e9, "G")
    } else if x >= 1e6 {
        (x / 1e6, "M")
    } else if x >= 1e3 {
        (x / 1e3, "k")
    } else {
        (x, "")
    };
    if v >= 100.0 {
        format!("{v:.0}{suffix}")
    } else if v >= 10.0 {
        format!("{v:.1}{suffix}")
    } else {
        format!("{v:.2}{suffix}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "blocks", "%"]);
        t.row(["considered", "6,877,175", ""]);
        t.row(["responding", "3,786,907", "55.1%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].contains("55.1%"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "more cells")]
    fn long_rows_rejected() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn count_separators() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(6_877_175), "6,877,175");
    }

    #[test]
    fn pct_and_si() {
        assert_eq!(pct(0.824), "82.4%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(si(2.34e9), "2.34G");
        assert_eq!(si(27_100.0), "27.1k");
        assert_eq!(si(407_000_000.0), "407M");
        assert_eq!(si(5.0), "5.00");
    }
}
