//! Load weighting: from block counts to query counts (§3.2, §5.4).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_bgp::SiteId;
use vp_dns::QueryLog;
use vp_geo::BinnedMap;

use crate::catchment::CatchmentMap;

/// Table 5: how much of the service's real traffic the catchment map can
/// account for.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MappabilityReport {
    /// Blocks the service saw queries from.
    pub blocks_seen: u64,
    /// ... of which Verfploeter mapped to a site.
    pub blocks_mapped: u64,
    /// Queries per day the service saw.
    pub queries_seen: f64,
    /// ... of which came from mapped blocks.
    pub queries_mapped: f64,
}

impl MappabilityReport {
    pub fn blocks_mapped_frac(&self) -> f64 {
        self.blocks_mapped as f64 / (self.blocks_seen.max(1)) as f64
    }
    pub fn queries_mapped_frac(&self) -> f64 {
        if self.queries_seen <= 0.0 {
            0.0
        } else {
            self.queries_mapped / self.queries_seen
        }
    }
}

/// Computes Table 5: traffic-weighted coverage of a catchment map.
pub fn mappability(catchments: &CatchmentMap, log: &QueryLog) -> MappabilityReport {
    let mut report = MappabilityReport {
        blocks_seen: 0,
        blocks_mapped: 0,
        queries_seen: 0.0,
        queries_mapped: 0.0,
    };
    for (i, b) in log.world().blocks.iter().enumerate() {
        let q = log.daily_by_idx(i);
        if q <= 0.0 {
            continue;
        }
        report.blocks_seen += 1;
        report.queries_seen += q;
        if catchments.site_of(b.block).is_some() {
            report.blocks_mapped += 1;
            report.queries_mapped += q;
        }
    }
    report
}

/// The predicted load split: daily queries per site, with `None` holding
/// the load of blocks the map could not place ("unknown", the red slices
/// of Fig. 4a). Blocks with traffic but no catchment entry land there.
pub fn load_split(catchments: &CatchmentMap, log: &QueryLog) -> BTreeMap<Option<SiteId>, f64> {
    let mut split: BTreeMap<Option<SiteId>, f64> = BTreeMap::new();
    for (i, b) in log.world().blocks.iter().enumerate() {
        let q = log.daily_by_idx(i);
        if q <= 0.0 {
            continue;
        }
        *split.entry(catchments.site_of(b.block)).or_insert(0.0) += q;
    }
    split
}

/// Fraction of *mapped* load going to `site` — the paper's load-weighted
/// "% LAX" excludes unknown blocks from the denominator ("we assume their
/// traffic will go to our sites in similar proportion to blocks in known
/// catchments", §5.4).
pub fn load_fraction_to(catchments: &CatchmentMap, log: &QueryLog, site: SiteId) -> f64 {
    let split = load_split(catchments, log);
    let mapped: f64 = split
        .iter()
        .filter(|(k, _)| k.is_some())
        .map(|(_, v)| *v)
        .sum();
    if mapped <= 0.0 {
        return 0.0;
    }
    split.get(&Some(site)).copied().unwrap_or(0.0) / mapped
}

/// Geographic load map (Fig. 4): per 2° bin, queries/sec per site, with
/// `None` = unmappable (red in the paper's rendering).
pub fn load_bins(catchments: &CatchmentMap, log: &QueryLog) -> BinnedMap<Option<SiteId>> {
    let mut bins = BinnedMap::new();
    let world = log.world();
    for (i, b) in world.blocks.iter().enumerate() {
        let q = log.daily_by_idx(i);
        if q <= 0.0 {
            continue;
        }
        if let Some(loc) = world.geodb.locate(b.block) {
            bins.add(loc.lat, loc.lon, catchments.site_of(b.block), q / 86_400.0);
        }
    }
    bins
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_dns::LoadModel;
    use vp_topology::{Internet, TopologyConfig};

    fn world() -> Internet {
        Internet::generate(TopologyConfig::tiny(101))
    }

    fn full_map(w: &Internet) -> CatchmentMap {
        CatchmentMap::from_pairs(
            "full",
            w.blocks
                .iter()
                .map(|b| (b.block, SiteId((b.block.0 % 2) as u8))),
        )
    }

    #[test]
    fn full_map_accounts_for_all_traffic() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        let m = mappability(&full_map(&w), &log);
        assert_eq!(m.blocks_seen, m.blocks_mapped);
        assert!((m.queries_mapped_frac() - 1.0).abs() < 1e-12);
        assert!((m.blocks_mapped_frac() - 1.0).abs() < 1e-12);
        assert!(m.queries_seen > 0.0);
    }

    #[test]
    fn partial_map_leaves_unknown_load() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        // Map only every other block.
        let partial = CatchmentMap::from_pairs(
            "partial",
            w.blocks
                .iter()
                .filter(|b| b.block.0 % 2 == 0)
                .map(|b| (b.block, SiteId(0))),
        );
        let m = mappability(&partial, &log);
        assert!(m.blocks_mapped < m.blocks_seen);
        assert!(m.queries_mapped_frac() < 1.0);
        let split = load_split(&partial, &log);
        let unknown = split.get(&None).copied().unwrap_or(0.0);
        assert!(unknown > 0.0, "no unknown load");
        let total: f64 = split.values().sum();
        assert!((total - m.queries_seen).abs() < 1e-6);
    }

    #[test]
    fn load_fraction_excludes_unknown_from_denominator() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        let partial = CatchmentMap::from_pairs(
            "partial",
            w.blocks
                .iter()
                .filter(|b| b.block.0 % 3 != 0)
                .map(|b| (b.block, SiteId((b.block.0 % 2) as u8))),
        );
        let f0 = load_fraction_to(&partial, &log, SiteId(0));
        let f1 = load_fraction_to(&partial, &log, SiteId(1));
        assert!((f0 + f1 - 1.0).abs() < 1e-9, "fractions must sum to 1");
        assert!(f0 > 0.0 && f1 > 0.0);
    }

    #[test]
    fn load_differs_from_block_count_weighting() {
        // The paper's central point: % by blocks != % by load.
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        let map = full_map(&w);
        let by_blocks = map.fraction_to(SiteId(0));
        let by_load = load_fraction_to(&map, &log, SiteId(0));
        assert!(
            (by_blocks - by_load).abs() > 1e-4,
            "block and load weighting coincide suspiciously: {by_blocks} vs {by_load}"
        );
    }

    #[test]
    fn load_bins_total_matches_rate() {
        let w = world();
        let log = QueryLog::ditl(&w, LoadModel::default(), "L");
        let bins = load_bins(&full_map(&w), &log);
        // All blocks are locatable except the unlocatable sliver.
        let located_load: f64 = w
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| w.geodb.locate(b.block).is_some())
            .map(|(i, _)| log.daily_by_idx(i))
            .sum();
        assert!((bins.total() - located_load / 86_400.0).abs() < 1e-6);
    }

    #[test]
    fn empty_log_yields_empty_reports() {
        let w = world();
        let model = LoadModel {
            participation: 0.0,
            ..LoadModel::default()
        };
        let log = QueryLog::ditl(&w, model, "empty");
        let m = mappability(&full_map(&w), &log);
        assert_eq!(m.blocks_seen, 0);
        assert_eq!(m.queries_mapped_frac(), 0.0);
        assert_eq!(load_fraction_to(&full_map(&w), &log, SiteId(0)), 0.0);
    }
}
