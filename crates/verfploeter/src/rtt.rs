//! Columnar RTT table: block → round-trip time, in fixed-point `u32`
//! nanoseconds.
//!
//! The scan pipeline's RTTs are probe-to-reply intervals that survive the
//! §4 cleaning cutoff (15 minutes by default, but every kept reply in
//! practice returns within seconds), so a `u32` nanosecond column — max
//! ~4.29 s — represents each kept RTT **exactly**; storage drops from the
//! tree's per-entry nodes to 8 bytes of payload per block across two
//! contiguous columns. Exactness is asserted in debug builds at insertion:
//! the fixed-point representation is a storage optimization, never a
//! rounding step, so [`RttTable::get`] returns bit-identical
//! [`SimDuration`]s to the historical `BTreeMap<Block24, SimDuration>`.

use vp_net::{conv, Block24, SimDuration};

/// Sorted block column plus a parallel fixed-point RTT column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RttTable {
    /// Mapped blocks, strictly ascending.
    blocks: Vec<Block24>,
    /// RTT of `blocks[i]` in nanoseconds, parallel to `blocks`.
    rtt_ns: Vec<u32>,
}

/// Packs an RTT into the fixed-point column representation.
///
/// Saturates at ~4.29 s in release builds; debug builds assert the value is
/// representable (cleaning admits nothing close to the limit — the probe
/// cutoff would have to exceed `u32::MAX` nanoseconds for a kept reply to
/// saturate).
fn pack_ns(rtt: SimDuration) -> u32 {
    debug_assert!(
        rtt.as_nanos() <= u64::from(u32::MAX),
        "RTT {} ns exceeds the u32 fixed-point range",
        rtt.as_nanos()
    );
    conv::sat_u32(rtt.as_nanos())
}

impl RttTable {
    /// Builds a table from `(block, rtt)` pairs. Input order is arbitrary;
    /// later pairs win on duplicate blocks, matching map-insert semantics.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Block24, SimDuration)>) -> RttTable {
        let mut rows: Vec<(Block24, u32)> =
            pairs.into_iter().map(|(b, r)| (b, pack_ns(r))).collect();
        // Stable sort + keep-last reproduces `BTreeMap::insert` semantics.
        rows.sort_by_key(|&(b, _)| b);
        let mut blocks = Vec::with_capacity(rows.len());
        let mut rtt_ns = Vec::with_capacity(rows.len());
        for (b, ns) in rows {
            if blocks.last() == Some(&b) {
                // vp-lint: allow(h2): last() == Some above proves non-emptiness.
                *rtt_ns.last_mut().expect("parallel columns") = ns;
            } else {
                blocks.push(b);
                rtt_ns.push(ns);
            }
        }
        RttTable { blocks, rtt_ns }
    }

    /// Number of blocks with a recorded RTT.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The RTT recorded for `block`, if any.
    pub fn get(&self, block: Block24) -> Option<SimDuration> {
        self.blocks
            .binary_search(&block)
            .ok()
            .map(|i| SimDuration::from_nanos(u64::from(self.rtt_ns[i]))) // vp-lint: allow(g1): binary_search ranks are below len and the columns are parallel.
    }

    /// Iterates `(block, rtt)` in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (Block24, SimDuration)> + '_ {
        self.blocks
            .iter()
            .copied()
            .zip(self.rtt_ns.iter().map(|&ns| SimDuration::from_nanos(u64::from(ns))))
    }

    /// Iterates RTT values in ascending block order.
    pub fn values(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.rtt_ns
            .iter()
            .map(|&ns| SimDuration::from_nanos(u64::from(ns)))
    }

    /// Absorbs another table's entries (disjoint union of per-shard
    /// tables; `other` wins where both map a block). Linear zip of sorted
    /// columns, with an O(1)-copy fast path for the append-only shard case.
    // vp-lint: merge-tested(RttTable::merge, suite=columnar_equivalence)
    pub fn merge(&mut self, other: &RttTable) {
        if other.is_empty() {
            return;
        }
        if self.blocks.last() < other.blocks.first() {
            self.blocks.extend_from_slice(&other.blocks);
            self.rtt_ns.extend_from_slice(&other.rtt_ns);
            return;
        }
        let mut blocks = Vec::with_capacity(self.blocks.len() + other.blocks.len());
        let mut rtt_ns = Vec::with_capacity(self.rtt_ns.len() + other.rtt_ns.len());
        let (mut i, mut j) = (0, 0);
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (self.blocks[i], other.blocks[j]); // vp-lint: allow(g1): i and j are bounded by the loop condition.
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    blocks.push(a);
                    rtt_ns.push(self.rtt_ns[i]); // vp-lint: allow(g1): columns are parallel.
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    blocks.push(b);
                    rtt_ns.push(other.rtt_ns[j]); // vp-lint: allow(g1): columns are parallel.
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    blocks.push(b);
                    rtt_ns.push(other.rtt_ns[j]); // vp-lint: allow(g1): columns are parallel; other wins like map insert.
                    i += 1;
                    j += 1;
                }
            }
        }
        blocks.extend_from_slice(&self.blocks[i..]); // vp-lint: allow(g1): i never exceeds len, per the loop condition.
        rtt_ns.extend_from_slice(&self.rtt_ns[i..]); // vp-lint: allow(g1): i never exceeds len, per the loop condition.
        blocks.extend_from_slice(&other.blocks[j..]); // vp-lint: allow(g1): j never exceeds len, per the loop condition.
        rtt_ns.extend_from_slice(&other.rtt_ns[j..]); // vp-lint: allow(g1): j never exceeds len, per the loop condition.
        self.blocks = blocks;
        self.rtt_ns = rtt_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[(u32, u64)]) -> RttTable {
        RttTable::from_pairs(
            rows.iter()
                .map(|&(b, ms)| (Block24(b), SimDuration::from_millis(ms))),
        )
    }

    #[test]
    fn lookup_and_order() {
        let t = table(&[(5, 20), (1, 10), (3, 30)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(Block24(3)), Some(SimDuration::from_millis(30)));
        assert_eq!(t.get(Block24(4)), None);
        let order: Vec<u32> = t.iter().map(|(b, _)| b.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
        let values: Vec<u64> = t.values().map(|r| r.as_nanos()).collect();
        assert_eq!(values, vec![10_000_000, 30_000_000, 20_000_000]);
    }

    #[test]
    fn fixed_point_is_exact_for_kept_rtts() {
        // Sub-nanosecond-resolution values across the whole representable
        // range round-trip exactly.
        for ns in [0u64, 1, 999, 1_000_000, 123_456_789, u64::from(u32::MAX)] {
            let t = RttTable::from_pairs([(Block24(1), SimDuration::from_nanos(ns))]);
            assert_eq!(t.get(Block24(1)), Some(SimDuration::from_nanos(ns)));
        }
    }

    #[test]
    fn last_pair_wins_on_duplicates() {
        let t = table(&[(7, 10), (7, 25)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(Block24(7)), Some(SimDuration::from_millis(25)));
    }

    #[test]
    fn merge_matches_map_semantics() {
        let mut a = table(&[(1, 10), (5, 50)]);
        a.merge(&table(&[(3, 30)])); // interleave
        a.merge(&table(&[(9, 90)])); // append fast path
        a.merge(&RttTable::default());
        let got: Vec<(u32, u64)> = a.iter().map(|(b, r)| (b.0, r.as_nanos())).collect();
        assert_eq!(
            got,
            vec![
                (1, 10_000_000),
                (3, 30_000_000),
                (5, 50_000_000),
                (9, 90_000_000)
            ]
        );
    }

    #[test]
    fn empty_table() {
        let t = RttTable::default();
        assert!(t.is_empty());
        assert_eq!(t.get(Block24(0)), None);
        assert_eq!(t.values().count(), 0);
    }
}
