//! A full Verfploeter measurement: probe → capture → forward → clean → map.

use vp_bgp::Announcement;
use vp_hitlist::Hitlist;
use vp_net::conv;
use vp_net::{SimDuration, SimTime};
use vp_sim::{CatchmentOracle, FaultConfig, NetworkSim, ShardExecutor};
use vp_topology::Internet;

use crate::catchment::CatchmentMap;
use crate::cleaning::{clean, CleaningStats};
use crate::collector::{forward_to_central, forward_to_central_on, split_by_site};
use crate::prober::{ProbeConfig, Prober, PROBE_BATCH};
use crate::rtt::RttTable;

/// Configuration of one measurement round.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Dataset tag, e.g. "SBV-5-15".
    pub name: String,
    /// Probing parameters (rate, round identifier, order seed).
    pub probe: ProbeConfig,
    /// Late-reply cutoff from measurement start (15 minutes in §4).
    pub cutoff: SimDuration,
    /// Trace detail recorded into [`ScanResult::obs`]. Affects only the
    /// trace summary (spans/events), never the metrics registry or any
    /// measurement output.
    pub trace: vp_obs::TraceLevel,
    /// Optional wall-time flight channel. When a binary attaches one
    /// (library code never constructs wall clocks — lint rule d4), the
    /// scan records host-time phase and shard intervals into
    /// [`ScanObs::wall_flight`]. Affects only that timeline: the
    /// measurement outputs, the registry, and the sim-time flight channel
    /// stay byte-identical with or without it.
    pub wall: Option<vp_obs::WallChannel>,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            name: "SBV".to_owned(),
            probe: ProbeConfig::default(),
            cutoff: SimDuration::from_mins(15),
            trace: vp_obs::TraceLevel::Summary,
            wall: None,
        }
    }
}

/// The outcome of one measurement round.
#[derive(Debug, Clone)]
pub struct ScanResult {
    pub catchments: CatchmentMap,
    pub cleaning: CleaningStats,
    /// Probes transmitted (one per hitlist entry).
    pub probes_sent: u64,
    /// When the round started / when the last probe left.
    pub started: SimTime,
    pub last_probe: SimTime,
    /// Round-trip time per mapped block (probe transmission to reply
    /// arrival at the capturing site). The paper's §7 notes these RTTs
    /// "can be used to suggest where new anycast sites would be helpful".
    /// Keyed in block order so downstream reports iterate deterministically;
    /// stored as a fixed-point columnar [`RttTable`] (exact — see its docs).
    pub rtts: RttTable,
    /// Simulator counters for the round.
    pub sim_stats: vp_sim::SimStats,
    /// Observability snapshot for the round (metrics + trace).
    pub obs: ScanObs,
}

/// The observability snapshot of one scan: a metrics registry, a trace
/// summary, and the shard layout.
///
/// The **registry** holds only shard-count-invariant series — pure sums of
/// per-packet or per-index contributions — so `run_scan` and
/// `run_scan_sharded(K)` produce byte-identical registries for every K
/// (asserted by the sharded-equivalence suite via
/// [`vp_obs::Registry::to_canonical_json`]). Anything that legitimately
/// depends on the shard layout (per-shard probe counts, per-engine run
/// spans in [`ScanObs::trace`]) lives *outside* the registry.
#[derive(Debug, Clone)]
pub struct ScanObs {
    /// Merged metrics: `scan.*`, `sim.*`, `clean.*`, `catchment.*`,
    /// `engine.*` series. Shard-count-invariant.
    pub registry: vp_obs::Registry,
    /// Merged span aggregates and (at `Full` level) events. Per-engine
    /// spans like `engine.run` appear once per engine, so this is NOT
    /// shard-count-invariant — diagnostics, not results.
    pub trace: vp_obs::TraceSummary,
    /// Sim-time at which the last event was processed (max across shards;
    /// equals the serial engine's final clock, and is asserted so).
    pub sim_end: SimTime,
    /// Probes assigned per shard, in shard order (length 1 for the serial
    /// path). Feeds the shard-balance section of run reports.
    pub shard_probes: Vec<u64>,
    /// Sim-time flight timeline for the round (DESIGN.md §15): phase
    /// intervals derived from shard-invariant sim-time marks, so it is
    /// **inside** the §7 contract — byte-identical serial vs sharded for
    /// every K (asserted via [`vp_obs::FlightTimeline::to_canonical_json`]).
    pub flight: vp_obs::FlightTimeline,
    /// Wall-time flight timeline, populated only when
    /// [`ScanConfig::wall`] carries a channel: host-time phase spans plus
    /// per-shard executor intervals (queue wait / compute / barrier
    /// wait). Explicitly **outside** the determinism contract.
    pub wall_flight: vp_obs::FlightTimeline,
}

/// RTT histogram bucket bounds in nanoseconds: 1 ms to ~25 min, growing
/// ×1.5 per bucket — wide enough for every in-cutoff reply at fine-grained
/// low-latency resolution.
pub fn rtt_bucket_bounds() -> Vec<u64> {
    vp_obs::Histogram::exponential(1_000_000, 3, 2, 36)
        .bounds()
        .to_vec()
}

/// Ring capacity for the wall-time flight recorders: generous for one
/// round's phase + executor spans, bounded against runaway instrumentation.
const FLIGHT_CAPACITY: usize = 4096;

/// Builds the round's **sim-time** flight timeline from shard-invariant
/// marks: round start, last probe transmission, and the final sim clock.
/// Both scan paths derive these from merged round artifacts, so the
/// timeline is inside the §7 contract by construction — it cannot see the
/// shard layout at all.
fn sim_flight(started: SimTime, last_probe: SimTime, sim_end: SimTime) -> vp_obs::FlightTimeline {
    let t0 = started.as_nanos();
    let tp = last_probe.as_nanos().max(t0);
    let te = sim_end.as_nanos().max(tp);
    let rec = vp_obs::FlightRecorder::new(Box::new(vp_obs::SimClock::new()), 16);
    rec.record_interval("scan.round", "round", None, t0, te);
    // Schedule walk and probe build happen while probes leave: in
    // sim-time both occupy [start, last probe].
    rec.record_interval("scan.schedule_walk", "probe", None, t0, tp);
    rec.record_interval("scan.probe_build", "probe", None, t0, tp);
    // The simulator then drains in-flight traffic until the last event.
    rec.record_interval("scan.sim_dispatch", "sim", None, tp, te);
    // Cleaning and catchment building run after the simulation: zero
    // sim-time width at the round's end mark.
    rec.record_interval("scan.cleaning", "clean", None, te, te);
    rec.record_interval("scan.catchment_build", "map", None, te, te);
    rec.drain()
}

/// Builds the scan's observability snapshot from per-engine sidecars plus
/// the final (already merged, shard-invariant) round artifacts. Shared by
/// the serial and sharded paths so their registries agree byte for byte.
#[allow(clippy::too_many_arguments)]
// vp-lint: cold(fn): once-per-round observability assembly, after the event loops have drained.
fn finish_obs(
    engines: Vec<(vp_obs::Registry, vp_obs::TraceSummary)>,
    sim_end: SimTime,
    shard_probes: Vec<u64>,
    probes_sent: u64,
    started: SimTime,
    last_probe: SimTime,
    wall_flight: vp_obs::FlightTimeline,
    sim_stats: &vp_sim::SimStats,
    cleaning: &CleaningStats,
    catchments: &CatchmentMap,
    rtts: &RttTable,
    announcement: &Announcement,
) -> ScanObs {
    let mut registry = vp_obs::Registry::new();
    let mut trace = vp_obs::TraceSummary::default();
    for (engine_registry, engine_trace) in &engines {
        registry.merge(engine_registry);
        trace.merge(engine_trace);
    }
    let flight = sim_flight(started, last_probe, sim_end);
    // Only the sim channel's overflow count may enter the registry: wall
    // channel depth varies with the shard layout, and the registry must
    // stay shard-count-invariant.
    registry.counter_add("flight.dropped_records", &[], flight.dropped);

    let site_name = |idx: usize| {
        announcement
            .sites
            .get(idx)
            .map_or("unknown", |s| s.name.as_str())
    };

    registry.counter_add("scan.probes_sent", &[], probes_sent);
    registry.counter_add("scan.blocks_mapped", &[], catchments.len() as u64);

    registry.counter_add("sim.injected", &[], sim_stats.injected);
    registry.counter_add("sim.replies", &[], sim_stats.replies);
    registry.counter_add("sim.lost", &[], sim_stats.lost);
    registry.counter_add("sim.duplicates", &[], sim_stats.duplicates);
    registry.counter_add("sim.aliases", &[], sim_stats.aliases);
    registry.counter_add("sim.unsolicited", &[], sim_stats.unsolicited);
    registry.counter_add("sim.undeliverable", &[], sim_stats.undeliverable);
    registry.counter_add("sim.delivered_to_hosts", &[], sim_stats.delivered_to_hosts);
    registry.counter_add("sim.delivered_to_sites", &[], sim_stats.delivered_to_sites);
    for (idx, n) in sim_stats.per_site_captures.iter().enumerate() {
        registry.counter_add("sim.site_captures", &[("site", site_name(idx))], *n);
    }

    registry.counter_add("clean.total", &[], cleaning.total);
    registry.counter_add("clean.duplicates", &[], cleaning.duplicates);
    registry.counter_add("clean.foreign", &[], cleaning.foreign);
    registry.counter_add("clean.unprobed_source", &[], cleaning.unprobed_source);
    registry.counter_add("clean.late", &[], cleaning.late);
    registry.counter_add("clean.kept", &[], cleaning.kept);

    for (site, count) in catchments.site_counts() {
        registry.counter_add(
            "catchment.blocks",
            &[("site", site_name(site.index()))],
            count as u64,
        );
    }

    // One insert for the whole RTT column: `histogram_observe` allocates
    // its `MetricKey` on every call, which at ~one reply per probe was the
    // single largest allocator source in the scan (the §17 witness counts
    // it). Building the histogram locally and inserting once produces the
    // identical registry state — including its absence when no reply
    // carried an RTT.
    if !rtts.is_empty() {
        let mut hist = vp_obs::Histogram::new(rtt_bucket_bounds());
        for rtt in rtts.values() {
            hist.observe(rtt.as_nanos());
        }
        registry.insert_histogram("scan.rtt_ns", &[], hist);
    }

    ScanObs {
        registry,
        trace,
        sim_end,
        shard_probes,
        flight,
        wall_flight,
    }
}

impl ScanResult {
    /// Blocks that were probed but produced no (usable) reply.
    ///
    /// Saturates at zero: a caller may pass the length of a *stale*
    /// hitlist (e.g. the previous round's, shorter after block churn), and
    /// a map can never meaningfully have negative non-responders.
    pub fn non_responding(&self, hitlist_len: usize) -> usize {
        hitlist_len.saturating_sub(self.catchments.len())
    }

    /// Response rate over the hitlist.
    pub fn response_rate(&self, hitlist_len: usize) -> f64 {
        self.catchments.len() as f64 / hitlist_len as f64
    }
}

/// Flushes one accumulated batch of scheduled probes into the engine:
/// builds the batch's packets **and their precomputed reply images**
/// through the allocation-amortized
/// [`Prober::build_probes_with_replies`] (two shared wire buffers,
/// incremental checksums) and injects them in schedule order, which
/// keeps the engine's per-packet sequence numbers — and therefore the
/// §7 keyed fault draws — identical to the probe-at-a-time path.
/// Responders answer with the precomputed image, so the reply path
/// allocates nothing per probe. Clears the index/send-time accumulators
/// for the next batch; `packets` and `reply_images` are the reused
/// output buffers.
fn send_batch(
    prober: &Prober,
    hitlist: &Hitlist,
    source: vp_net::Ipv4Addr,
    indices: &mut Vec<u64>,
    ats: &mut Vec<SimTime>,
    packets: &mut Vec<vp_packet::Ipv4Packet>,
    reply_images: &mut Vec<bytes::Bytes>,
    sim: &mut NetworkSim<'_>,
) {
    prober.build_probes_with_replies(hitlist, indices, source, packets, reply_images);
    for ((packet, image), &at) in packets.drain(..).zip(reply_images.drain(..)).zip(ats.iter()) {
        sim.send_probe_at(at, packet, image);
    }
    indices.clear();
    ats.clear();
}

/// Runs one full Verfploeter measurement at `start` over a fresh simulator.
///
/// This is the paper's §3.1 pipeline end to end: probes are emitted from
/// the measurement address in pseudorandom paced order, replies are
/// captured concurrently at all sites, forwarded (tagged with their site)
/// to the central point, cleaned per §4, and folded into a catchment map.
pub fn run_scan(
    world: &Internet,
    hitlist: &Hitlist,
    announcement: &Announcement,
    oracle: Box<dyn CatchmentOracle>,
    faults: FaultConfig,
    start: SimTime,
    config: &ScanConfig,
    sim_seed: u64,
) -> ScanResult {
    let mut sim = NetworkSim::new(world, faults, sim_seed);
    sim.attach_obs(config.trace);
    let svc = sim.register_service(announcement.clone(), oracle, false);
    let source = announcement.measurement_addr();

    // Wall-time flight channel, if the caller attached one. Guards close
    // (and record) at the matching `drop`, so each phase's interval spans
    // exactly the statements between its creation and drop.
    let wall_rec = config
        .wall
        .clone()
        .map(|w| vp_obs::FlightRecorder::new(Box::new(w), FLIGHT_CAPACITY));
    let round_guard = wall_rec.as_ref().map(|r| r.span("scan.round", "round", None));

    let prober = Prober::new(config.probe.clone());
    let probes_sent = hitlist.len() as u64;
    let mut last_probe = start;
    let mut send_time = vec![SimTime::ZERO; hitlist.len()];
    // Stream the schedule into the engine in PROBE_BATCH-sized bursts:
    // pacing is monotone, so the last walked time is the last probe's
    // transmission time, and flushing whole batches preserves schedule
    // order (hence injection sequence numbers) exactly. Probe packets are
    // built inside the walk, so the serial path's walk span covers probe
    // building too.
    let mut batch_indices: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
    let mut batch_ats: Vec<SimTime> = Vec::with_capacity(PROBE_BATCH);
    let mut batch_packets: Vec<vp_packet::Ipv4Packet> = Vec::with_capacity(PROBE_BATCH);
    let mut batch_replies: Vec<bytes::Bytes> = Vec::with_capacity(PROBE_BATCH);
    let guard = wall_rec
        .as_ref()
        .map(|r| r.span("scan.schedule_walk", "probe", None));
    prober.walk_schedule(probes_sent, start, |index, at| {
        send_time[conv::sat_usize(index)] = at; // vp-lint: allow(g1): walk indices are a permutation of this hitlist's indices.
        last_probe = at;
        batch_indices.push(index);
        batch_ats.push(at);
        if batch_indices.len() == PROBE_BATCH {
            send_batch(
                &prober,
                hitlist,
                source,
                &mut batch_indices,
                &mut batch_ats,
                &mut batch_packets,
                &mut batch_replies,
                &mut sim,
            );
        }
    });
    if !batch_indices.is_empty() {
        send_batch(
            &prober,
            hitlist,
            source,
            &mut batch_indices,
            &mut batch_ats,
            &mut batch_packets,
            &mut batch_replies,
            &mut sim,
        );
    }
    drop(guard);
    let guard = wall_rec
        .as_ref()
        .map(|r| r.span("scan.sim_dispatch", "sim", None));
    sim.run();
    drop(guard);

    let num_sites = announcement.sites.len();
    let captures = sim.take_captures(svc);
    let by_site = split_by_site(captures, num_sites);
    let central = forward_to_central(by_site);
    let guard = wall_rec
        .as_ref()
        .map(|r| r.span("scan.cleaning", "clean", None));
    let (clean_replies, cleaning) = clean(&central, hitlist, config.probe.ident, start, config.cutoff);
    drop(guard);
    let guard = wall_rec
        .as_ref()
        .map(|r| r.span("scan.catchment_build", "map", None));
    let catchments = CatchmentMap::from_replies(&config.name, &clean_replies, hitlist);
    let rtts = RttTable::from_pairs(clean_replies.iter().map(|r| {
        let block = hitlist.entry(conv::sat_usize(r.index)).block;
        (block, r.at.since(send_time[conv::sat_usize(r.index)])) // vp-lint: allow(g1): send_time is sized to the hitlist that minted r.index.
    }));
    drop(guard);
    drop(round_guard);
    let wall_flight = wall_rec.map(|r| r.drain()).unwrap_or_default();

    let sim_stats = sim.stats();
    let sim_end = sim.now();
    let engines = match sim.take_obs() {
        Some(engine_obs) => {
            let engine_trace = engine_obs.tracer.drain();
            vec![(engine_obs.registry, engine_trace)]
        }
        None => Vec::new(),
    };
    let obs = finish_obs(
        engines,
        sim_end,
        vec![probes_sent],
        probes_sent,
        start,
        last_probe,
        wall_flight,
        &sim_stats,
        &cleaning,
        &catchments,
        &rtts,
        announcement,
    );

    ScanResult {
        catchments,
        cleaning,
        probes_sent,
        started: start,
        last_probe,
        rtts,
        sim_stats,
        obs,
    }
}

/// Runs one full Verfploeter measurement partitioned over `shards`
/// independent simulator engines on a thread pool, producing a
/// [`ScanResult`] **bit-identical** to [`run_scan`] with the same inputs.
///
/// The hitlist is split into contiguous, block-ordered shards
/// ([`Hitlist::shard_bounds`]); the global probe schedule is computed once
/// (so every probe keeps its serial transmission time and payload index)
/// and each shard's probes are replayed into a private engine seeded for
/// that shard. Equivalence to the serial run rests on two invariants:
///
/// 1. **Order-independent fault draws.** Every stochastic outcome in
///    [`vp_sim`] is a keyed hash of the round seed and the packet's
///    identity, not a draw from a shared sequential stream — so an engine
///    simulating a subset of the traffic makes exactly the decisions the
///    serial engine makes for that subset.
/// 2. **Shard-closed reply traffic.** A probe to hitlist index `i` can
///    only produce replies attributed to index `i` (aliases stay inside
///    the block; unsolicited traffic carries no payload and is always
///    cleaned as foreign), so every reply lands in the engine that owns
///    its index, per-shard cleaning sees the same competition between
///    replies as the serial pass, and the per-shard maps/counters merge
///    disjointly.
///
/// `make_oracle` builds one oracle per shard engine (each engine owns its
/// oracle box); it must return equivalent oracles for equivalence to hold.
/// Merging happens in shard-index order, though the merge itself is
/// order-insensitive (disjoint unions and commutative sums).
///
/// Threading goes through the blessed [`ShardExecutor`] (DESIGN.md §14)
/// bounded by the host's available parallelism; use
/// [`run_scan_sharded_on`] to pin a specific worker count.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn run_scan_sharded(
    world: &Internet,
    hitlist: &Hitlist,
    announcement: &Announcement,
    make_oracle: &(dyn Fn() -> Box<dyn CatchmentOracle> + Sync), // vp-lint: allow(p4): the oracle factory is invoked once per shard at engine setup, never per probe.
    faults: FaultConfig,
    start: SimTime,
    config: &ScanConfig,
    sim_seed: u64,
    shards: usize,
) -> ScanResult {
    run_scan_sharded_on(
        &ShardExecutor::host_parallel(shards),
        world,
        hitlist,
        announcement,
        make_oracle,
        faults,
        start,
        config,
        sim_seed,
        shards,
    )
}

/// [`run_scan_sharded`] with an explicit executor: callers (benchmarks,
/// equivalence tests) pick how many OS threads run the shard engines,
/// from fully inline ([`ShardExecutor::serial`]) to a fixed thread count
/// ([`ShardExecutor::new`]). The result is bit-identical across all of
/// them — the executor only schedules work, the merge below is always in
/// shard-id order.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn run_scan_sharded_on(
    exec: &ShardExecutor,
    world: &Internet,
    hitlist: &Hitlist,
    announcement: &Announcement,
    make_oracle: &(dyn Fn() -> Box<dyn CatchmentOracle> + Sync), // vp-lint: allow(p4): the oracle factory is invoked once per shard at engine setup, never per probe.
    faults: FaultConfig,
    start: SimTime,
    config: &ScanConfig,
    sim_seed: u64,
    shards: usize,
) -> ScanResult {
    assert!(shards > 0, "cannot scan with zero shards");
    let source = announcement.measurement_addr();
    let num_sites = announcement.sites.len();

    // Orchestrator-level wall channel (shard = None): the global schedule
    // prepass and the merge run on the calling thread. Shard workers get
    // their own recorders inside the job closure — recorder handles are
    // `Rc`-based and never cross a thread boundary.
    let wall_rec = config
        .wall
        .clone()
        .map(|w| vp_obs::FlightRecorder::new(Box::new(w), FLIGHT_CAPACITY)); // vp-lint: allow(p1): the orchestrator's wall recorder is built once per scan.
    let round_guard = wall_rec.as_ref().map(|r| r.span("scan.round", "round", None));

    // Global schedule, identical to the serial path: pacing and payload
    // indices must not depend on the shard count. One prepass walk records
    // send times and slices the schedule per shard — each shard's
    // `(index, at)` pairs in global walk order, 16 bytes per probe — so
    // the engines never re-walk the schedule. Probe *packets* (payload
    // bytes and all) are still materialized only inside the owning
    // engine, at O(hitlist/K) packets per engine.
    let prober = Prober::new(config.probe.clone());
    let probes_sent = hitlist.len() as u64;
    let mut last_probe = start;
    let mut send_time = vec![SimTime::ZERO; hitlist.len()]; // vp-lint: allow(p1): schedule prepass buffer, one allocation per scan.
    let mut schedule_slices: Vec<Vec<(u64, SimTime)>> = vec![Vec::new(); shards]; // vp-lint: allow(p1): one slice vector per shard, allocated before the probe loop.
    let guard = wall_rec
        .as_ref()
        .map(|r| r.span("scan.schedule_walk", "probe", None));
    prober.walk_schedule(probes_sent, start, |index, at| {
        send_time[conv::sat_usize(index)] = at; // vp-lint: allow(g1): walk indices are a permutation of this hitlist's indices.
        last_probe = at;
        schedule_slices[hitlist.shard_of(conv::sat_usize(index), shards)].push((index, at)); // vp-lint: allow(g1): shard_of returns a value < shards by contract.
    });
    drop(guard);

    // One engine per shard, run on the blessed executor. Each engine gets
    // the same round seed (keyed fault draws must agree with the serial
    // engine) but a shard-distinct auxiliary RNG stream via
    // `NetworkSim::new_shard`. The executor returns outcomes in shard-id
    // order, so the merge below folds shard 0, 1, 2, … by construction.
    struct ShardOutcome {
        catchments: CatchmentMap,
        cleaning: CleaningStats,
        rtts: RttTable,
        sim_stats: vp_sim::SimStats,
        probes: u64,
        sim_end: SimTime,
        // Tracers hold `Rc` state, so engines drain to a detached
        // (Send) registry + summary before crossing the thread boundary.
        obs_registry: vp_obs::Registry,
        obs_trace: vp_obs::TraceSummary,
        // Likewise a detached (Send) snapshot of the shard's wall-time
        // flight recorder; empty when no wall channel is attached.
        wall_flight: vp_obs::FlightTimeline,
    }
    let (outcomes, shard_timings): (Vec<ShardOutcome>, Vec<vp_sim::exec::ShardTiming>) = exec
        .run_sharded_timed(
            shards,
            |k| {
                let shard_id = Some(u32::try_from(k).unwrap_or(u32::MAX));
                let shard_rec = config
                    .wall
                    .clone()
                    .map(|w| vp_obs::FlightRecorder::new(Box::new(w), FLIGHT_CAPACITY)); // vp-lint: allow(p1): one recorder per shard worker, not per probe.
                let mut sim = NetworkSim::new_shard(world, faults.clone(), sim_seed, k as u64);
                sim.attach_obs(config.trace);
                let svc = sim.register_service(announcement.clone(), make_oracle(), false);
                // Replay this shard's slice of the global schedule: identical
                // send times and payload indices to the serial path, in the same
                // (global walk) injection order the serial engine saw.
                let slice = &schedule_slices[k]; // vp-lint: allow(g1): the executor only calls k < shards, the length of schedule_slices.
                let probes = slice.len() as u64;
                let guard = shard_rec
                    .as_ref()
                    .map(|r| r.span("scan.probe_build", "probe", shard_id));
                let mut batch_indices: Vec<u64> = Vec::with_capacity(PROBE_BATCH);
                let mut batch_ats: Vec<SimTime> = Vec::with_capacity(PROBE_BATCH);
                let mut batch_packets: Vec<vp_packet::Ipv4Packet> =
                    Vec::with_capacity(PROBE_BATCH);
                let mut batch_replies: Vec<bytes::Bytes> = Vec::with_capacity(PROBE_BATCH);
                for chunk in slice.chunks(PROBE_BATCH) {
                    for &(index, at) in chunk {
                        batch_indices.push(index);
                        batch_ats.push(at);
                    }
                    send_batch(
                        &prober,
                        hitlist,
                        source,
                        &mut batch_indices,
                        &mut batch_ats,
                        &mut batch_packets,
                        &mut batch_replies,
                        &mut sim,
                    );
                }
                drop(guard);
                let guard = shard_rec
                    .as_ref()
                    .map(|r| r.span("scan.sim_dispatch", "sim", shard_id));
                sim.run();
                drop(guard);

                let captures = sim.take_captures(svc);
                let by_site = split_by_site(captures, num_sites);
                // Serial site forwarding: this closure is already on a shard
                // worker thread; nesting another pool would oversubscribe.
                let central = forward_to_central_on(&ShardExecutor::serial(), by_site);
                let guard = shard_rec
                    .as_ref()
                    .map(|r| r.span("scan.cleaning", "clean", shard_id));
                let (clean_replies, cleaning) =
                    clean(&central, hitlist, config.probe.ident, start, config.cutoff);
                drop(guard);
                let guard = shard_rec
                    .as_ref()
                    .map(|r| r.span("scan.catchment_build", "map", shard_id));
                let catchments = CatchmentMap::from_replies(&config.name, &clean_replies, hitlist);
                let rtts = RttTable::from_pairs(clean_replies.iter().map(|r| {
                    let block = hitlist.entry(conv::sat_usize(r.index)).block;
                    (block, r.at.since(send_time[conv::sat_usize(r.index)])) // vp-lint: allow(g1): send_time is sized to the hitlist that minted r.index.
                }));
                drop(guard);
                let sim_end = sim.now();
                let (obs_registry, obs_trace) = match sim.take_obs() {
                    Some(engine_obs) => {
                        let trace = engine_obs.tracer.drain();
                        (engine_obs.registry, trace)
                    }
                    None => Default::default(),
                };
                ShardOutcome {
                    catchments,
                    cleaning,
                    rtts,
                    sim_stats: sim.stats(),
                    probes,
                    sim_end,
                    obs_registry,
                    obs_trace,
                    wall_flight: shard_rec.map(|r| r.drain()).unwrap_or_default(),
                }
            },
            config
                .wall
                .as_ref()
                .map(|w| w as &(dyn vp_obs::Clock + Sync)), // vp-lint: allow(p4): one clock cast per scan, handing the wall channel to the executor.
        );

    // Executor-level wall intervals: one queue-wait / compute / barrier-wait
    // triple per shard, derived from the timing marks the executor read
    // from the wall channel (empty without one).
    if let Some(rec) = wall_rec.as_ref() {
        for t in &shard_timings {
            let sid = Some(u32::try_from(t.shard).unwrap_or(u32::MAX));
            rec.record_interval("shard.queue_wait", "exec", sid, t.queued_ns, t.started_ns);
            rec.record_interval("shard.compute", "exec", sid, t.started_ns, t.finished_ns);
            rec.record_interval("shard.barrier_wait", "exec", sid, t.finished_ns, t.merged_ns);
        }
    }

    // Deterministic merge in shard-index order (the executor's output
    // order). The shards cover disjoint hitlist slices, so the unions are
    // disjoint and the sums exact.
    let merge_guard = wall_rec.as_ref().map(|r| r.span("scan.merge", "merge", None));
    let mut catchments = CatchmentMap::from_pairs(&config.name, std::iter::empty());
    let mut cleaning = CleaningStats::default();
    let mut rtts = RttTable::default();
    let mut sim_stats = vp_sim::SimStats::default();
    let mut sim_end = SimTime::ZERO;
    let mut shard_probes = Vec::with_capacity(outcomes.len());
    let mut engines = Vec::with_capacity(outcomes.len());
    let mut wall_flight = vp_obs::FlightTimeline::default();
    for o in &outcomes {
        catchments.merge(&o.catchments);
        cleaning.merge(&o.cleaning);
        rtts.merge(&o.rtts);
        sim_stats.merge(&o.sim_stats);
        // The union of shard event streams is the serial event stream, so
        // the max final clock equals the serial engine's final clock.
        sim_end = sim_end.max(o.sim_end);
        shard_probes.push(o.probes);
        engines.push((o.obs_registry.clone(), o.obs_trace.clone()));
        wall_flight.merge(&o.wall_flight);
    }
    drop(merge_guard);
    drop(round_guard);
    if let Some(rec) = wall_rec {
        wall_flight.merge(&rec.drain());
    }
    let obs = finish_obs(
        engines,
        sim_end,
        shard_probes,
        probes_sent,
        start,
        last_probe,
        wall_flight,
        &sim_stats,
        &cleaning,
        &catchments,
        &rtts,
        announcement,
    );

    ScanResult {
        catchments,
        cleaning,
        probes_sent,
        started: start,
        last_probe,
        rtts,
        sim_stats,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_hitlist::HitlistConfig;
    use vp_sim::{Scenario, StaticOracle};
    use vp_topology::TopologyConfig;

    fn setup() -> (Scenario, Hitlist) {
        let s = Scenario::broot(TopologyConfig::tiny(81), 7);
        let hl = Hitlist::from_internet(
            &s.world,
            &HitlistConfig {
                wrong_addr_prob: 0.0,
                ..HitlistConfig::default()
            },
        );
        (s, hl)
    }

    #[test]
    fn clean_channel_maps_every_responsive_block_correctly() {
        let (s, hl) = setup();
        let table = s.routing();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            1,
        );
        let responsive = s.world.responsive_blocks().count();
        assert_eq!(result.catchments.len(), responsive);
        assert_eq!(result.probes_sent, hl.len() as u64);
        assert!(result.cleaning.is_consistent());
        // Ground truth check: every mapped block matches the routing table.
        for (block, site) in result.catchments.iter() {
            let info = s.world.block(block).unwrap();
            assert_eq!(Some(site), table.site_of_pop(info.pop), "block {block}");
        }
    }

    #[test]
    fn response_rate_tracks_world_responsiveness() {
        let (s, hl) = setup();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            1,
        );
        let rate = result.response_rate(hl.len());
        let world_rate = s.world.responsive_blocks().count() as f64 / s.world.blocks.len() as f64;
        assert!((rate - world_rate).abs() < 1e-9);
        assert_eq!(
            result.non_responding(hl.len()),
            hl.len() - result.catchments.len()
        );
    }

    #[test]
    fn faults_are_cleaned_out() {
        let (s, hl) = setup();
        let faults = FaultConfig {
            duplicate_prob: 0.3,
            max_duplicates: 10,
            alias_prob: 0.2,
            late_prob: 0.05,
            late_delay: SimDuration::from_mins(20),
            unsolicited_prob: 0.05,
            ..FaultConfig::none()
        };
        let table = s.routing();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            faults,
            SimTime::ZERO,
            &ScanConfig::default(),
            2,
        );
        let st = result.cleaning;
        assert!(st.is_consistent());
        assert!(st.duplicates > 0, "no duplicates seen: {st:?}");
        assert!(st.unprobed_source > 0, "no aliased replies seen: {st:?}");
        assert!(st.late > 0, "no late replies seen: {st:?}");
        // Despite the noise, all surviving mappings are correct.
        for (block, site) in result.catchments.iter() {
            let info = s.world.block(block).unwrap();
            assert_eq!(Some(site), table.site_of_pop(info.pop));
        }
    }

    #[test]
    fn wrong_hitlist_targets_reduce_coverage() {
        let (s, _) = setup();
        let hl_bad = Hitlist::from_internet(
            &s.world,
            &HitlistConfig {
                wrong_addr_prob: 0.5,
                seed: 3,
            },
        );
        let result = run_scan(
            &s.world,
            &hl_bad,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            1,
        );
        let responsive = s.world.responsive_blocks().count();
        assert!(
            result.catchments.len() < responsive * 3 / 4,
            "wrong targets should cut coverage: {} vs {responsive}",
            result.catchments.len()
        );
    }

    #[test]
    fn distinct_round_idents_separate_datasets() {
        let (s, hl) = setup();
        // Round 2's cleaning must reject replies carrying round 1's ident;
        // here we just check the config plumbs through.
        let cfg = ScanConfig {
            probe: ProbeConfig {
                ident: 42,
                ..ProbeConfig::default()
            },
            ..ScanConfig::default()
        };
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            &cfg,
            1,
        );
        assert!(result.cleaning.kept > 0);
        assert_eq!(result.cleaning.foreign, 0);
    }

    /// Asserts every observable field of two scan results is bit-identical.
    fn assert_results_identical(a: &ScanResult, b: &ScanResult) {
        assert_eq!(a.cleaning, b.cleaning, "cleaning stats differ");
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.started, b.started);
        assert_eq!(a.last_probe, b.last_probe);
        assert_eq!(a.catchments.len(), b.catchments.len(), "map sizes differ");
        for (block, site) in a.catchments.iter() {
            assert_eq!(b.catchments.site_of(block), Some(site), "block {block}");
        }
        assert_eq!(a.rtts.len(), b.rtts.len(), "rtt map sizes differ");
        for (block, rtt) in a.rtts.iter() {
            assert_eq!(b.rtts.get(block), Some(rtt), "rtt of {block}");
        }
        assert_eq!(a.sim_stats, b.sim_stats, "sim stats differ");
        // The observability layer must not break under sharding either:
        // metrics registries are byte-identical (trace summaries are not
        // compared — per-engine spans legitimately differ per K).
        assert_eq!(
            a.obs.registry.to_canonical_json(),
            b.obs.registry.to_canonical_json(),
            "obs registries differ"
        );
        // The sim-time flight channel is in the contract too; the wall
        // channel is explicitly excluded (host timing).
        assert_eq!(
            a.obs.flight.to_canonical_json(),
            b.obs.flight.to_canonical_json(),
            "sim flight timelines differ"
        );
        assert_eq!(a.obs.sim_end, b.obs.sim_end, "sim end times differ");
    }

    /// The fast equivalence gate: on the tiny topology, the sharded scan
    /// must reproduce the serial scan bit-for-bit under heavy faults, for
    /// every shard count.
    #[test]
    fn sharded_scan_is_bit_identical_to_serial() {
        let (s, hl) = setup();
        let faults = FaultConfig::default();
        let serial = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            faults.clone(),
            SimTime::ZERO,
            &ScanConfig::default(),
            77,
        );
        for shards in [1, 2, 7, 16] {
            let sharded = run_scan_sharded(
                &s.world,
                &hl,
                &s.announcement,
                &|| Box::new(StaticOracle::new(s.routing())),
                faults.clone(),
                SimTime::ZERO,
                &ScanConfig::default(),
                77,
                shards,
            );
            assert_results_identical(&serial, &sharded);
            // Shard bookkeeping: every probe is owned by exactly one shard.
            assert_eq!(sharded.obs.shard_probes.len(), shards);
            assert_eq!(
                sharded.obs.shard_probes.iter().sum::<u64>(),
                sharded.probes_sent
            );
        }
        assert_eq!(serial.obs.shard_probes, vec![serial.probes_sent]);
    }

    /// The registry carries the round's headline numbers, consistent with
    /// the structured result fields.
    #[test]
    fn scan_obs_registry_reflects_result() {
        let (s, hl) = setup();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::default(),
            SimTime::ZERO,
            &ScanConfig::default(),
            5,
        );
        let reg = &result.obs.registry;
        assert_eq!(reg.counter_value("scan.probes_sent", &[]), result.probes_sent);
        assert_eq!(
            reg.counter_value("scan.blocks_mapped", &[]),
            result.catchments.len() as u64
        );
        assert_eq!(reg.counter_value("clean.kept", &[]), result.cleaning.kept);
        assert_eq!(
            reg.counter_value("sim.injected", &[]),
            result.sim_stats.injected
        );
        // Per-site capture counters sum to total site deliveries.
        let per_site: u64 = s
            .announcement
            .sites
            .iter()
            .map(|site| reg.counter_value("sim.site_captures", &[("site", site.name.as_str())]))
            .sum();
        assert_eq!(per_site, result.sim_stats.delivered_to_sites);
        // Catchment block counters match the map's site counts.
        for (site, count) in result.catchments.site_counts() {
            let name = s.announcement.sites[site.index()].name.as_str();
            assert_eq!(
                reg.counter_value("catchment.blocks", &[("site", name)]),
                count as u64
            );
        }
        // The RTT histogram saw every mapped block once.
        let hist = result.obs.registry.histogram("scan.rtt_ns", &[]);
        assert_eq!(hist.map(|h| h.count()), Some(result.rtts.len() as u64));
        // The engine ran and profiled its event loop in sim-time.
        assert!(reg.counter_value("engine.events", &[]) > 0);
        let span = result.obs.trace.spans.get("engine.run");
        assert!(span.is_some_and(|agg| agg.count == 1 && agg.total_nanos > 0));
        assert!(result.obs.sim_end.as_nanos() > 0);
    }

    /// `trace: Full` records bounded events without changing any
    /// measurement output or the metrics registry.
    #[test]
    fn full_trace_level_does_not_change_results() {
        let (s, hl) = setup();
        let run = |trace| {
            run_scan(
                &s.world,
                &hl,
                &s.announcement,
                Box::new(StaticOracle::new(s.routing())),
                FaultConfig::default(),
                SimTime::ZERO,
                &ScanConfig {
                    trace,
                    ..ScanConfig::default()
                },
                13,
            )
        };
        let summary = run(vp_obs::TraceLevel::Summary);
        let full = run(vp_obs::TraceLevel::Full);
        assert_results_identical(&summary, &full);
        assert!(summary.obs.trace.events.is_empty());
    }

    /// The sim-time flight channel tiles the round: the walk/probe spans
    /// cover [start, last_probe], dispatch covers [last_probe, sim_end],
    /// and the round span covers it all — with no wall channel attached,
    /// the wall timeline stays empty.
    #[test]
    fn sim_flight_channel_tiles_the_round() {
        let (s, hl) = setup();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::default(),
            SimTime::ZERO,
            &ScanConfig::default(),
            5,
        );
        let flight = &result.obs.flight;
        assert!(result.obs.wall_flight.is_empty(), "no wall channel attached");
        assert_eq!(flight.dropped, 0);
        let by_name = |n: &str| {
            flight
                .spans
                .iter()
                .find(|sp| sp.name == n)
                .unwrap_or_else(|| panic!("missing span {n}: {flight:?}"))
        };
        let round = by_name("scan.round");
        assert_eq!(round.start_ns, result.started.as_nanos());
        assert_eq!(round.end_ns, result.obs.sim_end.as_nanos());
        let walk = by_name("scan.schedule_walk");
        assert_eq!(walk.end_ns, result.last_probe.as_nanos());
        let dispatch = by_name("scan.sim_dispatch");
        assert_eq!(dispatch.start_ns, walk.end_ns);
        assert_eq!(dispatch.end_ns, round.end_ns);
        assert_eq!(
            result.obs.registry.counter_value("flight.dropped_records", &[]),
            0
        );
    }

    #[test]
    fn scan_is_deterministic() {
        let (s, hl) = setup();
        let run = || {
            run_scan(
                &s.world,
                &hl,
                &s.announcement,
                Box::new(StaticOracle::new(s.routing())),
                FaultConfig::default(),
                SimTime::ZERO,
                &ScanConfig::default(),
                9,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.cleaning, b.cleaning);
        assert_eq!(a.catchments.len(), b.catchments.len());
        for (block, site) in a.catchments.iter() {
            assert_eq!(b.catchments.site_of(block), Some(site));
        }
    }
}
