//! A full Verfploeter measurement: probe → capture → forward → clean → map.

use std::collections::BTreeMap;

use vp_bgp::Announcement;
use vp_hitlist::Hitlist;
use vp_net::conv;
use vp_net::{Block24, SimDuration, SimTime};
use vp_sim::{CatchmentOracle, FaultConfig, NetworkSim};
use vp_topology::Internet;

use crate::catchment::CatchmentMap;
use crate::cleaning::{clean, CleaningStats};
use crate::collector::{forward_to_central, split_by_site};
use crate::prober::{ProbeConfig, Prober};

/// Configuration of one measurement round.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Dataset tag, e.g. "SBV-5-15".
    pub name: String,
    /// Probing parameters (rate, round identifier, order seed).
    pub probe: ProbeConfig,
    /// Late-reply cutoff from measurement start (15 minutes in §4).
    pub cutoff: SimDuration,
}

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            name: "SBV".to_owned(),
            probe: ProbeConfig::default(),
            cutoff: SimDuration::from_mins(15),
        }
    }
}

/// The outcome of one measurement round.
#[derive(Debug, Clone)]
pub struct ScanResult {
    pub catchments: CatchmentMap,
    pub cleaning: CleaningStats,
    /// Probes transmitted (one per hitlist entry).
    pub probes_sent: u64,
    /// When the round started / when the last probe left.
    pub started: SimTime,
    pub last_probe: SimTime,
    /// Round-trip time per mapped block (probe transmission to reply
    /// arrival at the capturing site). The paper's §7 notes these RTTs
    /// "can be used to suggest where new anycast sites would be helpful".
    /// Keyed in block order so downstream reports iterate deterministically.
    pub rtts: BTreeMap<Block24, SimDuration>,
    /// Simulator counters for the round.
    pub sim_stats: vp_sim::SimStats,
}

impl ScanResult {
    /// Blocks that were probed but produced no (usable) reply.
    ///
    /// Saturates at zero: a caller may pass the length of a *stale*
    /// hitlist (e.g. the previous round's, shorter after block churn), and
    /// a map can never meaningfully have negative non-responders.
    pub fn non_responding(&self, hitlist_len: usize) -> usize {
        hitlist_len.saturating_sub(self.catchments.len())
    }

    /// Response rate over the hitlist.
    pub fn response_rate(&self, hitlist_len: usize) -> f64 {
        self.catchments.len() as f64 / hitlist_len as f64
    }
}

/// Runs one full Verfploeter measurement at `start` over a fresh simulator.
///
/// This is the paper's §3.1 pipeline end to end: probes are emitted from
/// the measurement address in pseudorandom paced order, replies are
/// captured concurrently at all sites, forwarded (tagged with their site)
/// to the central point, cleaned per §4, and folded into a catchment map.
pub fn run_scan(
    world: &Internet,
    hitlist: &Hitlist,
    announcement: &Announcement,
    oracle: Box<dyn CatchmentOracle>,
    faults: FaultConfig,
    start: SimTime,
    config: &ScanConfig,
    sim_seed: u64,
) -> ScanResult {
    let mut sim = NetworkSim::new(world, faults, sim_seed);
    let svc = sim.register_service(announcement.clone(), oracle, false);
    let source = announcement.measurement_addr();

    let prober = Prober::new(config.probe.clone());
    let probes = prober.schedule(hitlist, source, start);
    let probes_sent = probes.len() as u64;
    let last_probe = probes.last().map_or(start, |p| p.at);
    let mut send_time = vec![SimTime::ZERO; hitlist.len()];
    for p in probes {
        send_time[conv::sat_usize(p.index)] = p.at;
        sim.send_at(p.at, p.packet);
    }
    sim.run();

    let num_sites = announcement.sites.len();
    let captures = sim.take_captures(svc);
    let by_site = split_by_site(captures, num_sites);
    let central = forward_to_central(by_site);
    let (clean_replies, cleaning) = clean(&central, hitlist, config.probe.ident, start, config.cutoff);
    let catchments = CatchmentMap::from_replies(&config.name, &clean_replies, hitlist);
    let rtts = clean_replies
        .iter()
        .map(|r| {
            let block = hitlist.entry(conv::sat_usize(r.index)).block;
            (block, r.at.since(send_time[conv::sat_usize(r.index)]))
        })
        .collect();

    ScanResult {
        catchments,
        cleaning,
        probes_sent,
        started: start,
        last_probe,
        rtts,
        sim_stats: sim.stats(),
    }
}

/// Runs one full Verfploeter measurement partitioned over `shards`
/// independent simulator engines on a thread pool, producing a
/// [`ScanResult`] **bit-identical** to [`run_scan`] with the same inputs.
///
/// The hitlist is split into contiguous, block-ordered shards
/// ([`Hitlist::shard_bounds`]); the global probe schedule is computed once
/// (so every probe keeps its serial transmission time and payload index)
/// and each shard's probes are replayed into a private engine seeded for
/// that shard. Equivalence to the serial run rests on two invariants:
///
/// 1. **Order-independent fault draws.** Every stochastic outcome in
///    [`vp_sim`] is a keyed hash of the round seed and the packet's
///    identity, not a draw from a shared sequential stream — so an engine
///    simulating a subset of the traffic makes exactly the decisions the
///    serial engine makes for that subset.
/// 2. **Shard-closed reply traffic.** A probe to hitlist index `i` can
///    only produce replies attributed to index `i` (aliases stay inside
///    the block; unsolicited traffic carries no payload and is always
///    cleaned as foreign), so every reply lands in the engine that owns
///    its index, per-shard cleaning sees the same competition between
///    replies as the serial pass, and the per-shard maps/counters merge
///    disjointly.
///
/// `make_oracle` builds one oracle per shard engine (each engine owns its
/// oracle box); it must return equivalent oracles for equivalence to hold.
/// Merging happens in shard-index order, though the merge itself is
/// order-insensitive (disjoint unions and commutative sums).
///
/// # Panics
/// Panics if `shards` is zero.
pub fn run_scan_sharded(
    world: &Internet,
    hitlist: &Hitlist,
    announcement: &Announcement,
    make_oracle: &(dyn Fn() -> Box<dyn CatchmentOracle> + Sync),
    faults: FaultConfig,
    start: SimTime,
    config: &ScanConfig,
    sim_seed: u64,
    shards: usize,
) -> ScanResult {
    assert!(shards > 0, "cannot scan with zero shards");
    let source = announcement.measurement_addr();
    let num_sites = announcement.sites.len();

    // Global schedule, identical to the serial path: pacing and payload
    // indices must not depend on the shard count.
    let prober = Prober::new(config.probe.clone());
    let probes = prober.schedule(hitlist, source, start);
    let probes_sent = probes.len() as u64;
    let last_probe = probes.last().map_or(start, |p| p.at);
    let mut send_time = vec![SimTime::ZERO; hitlist.len()];
    let mut per_shard: Vec<Vec<crate::prober::ScheduledProbe>> =
        (0..shards).map(|_| Vec::new()).collect();
    for p in probes {
        send_time[conv::sat_usize(p.index)] = p.at;
        per_shard[hitlist.shard_of(conv::sat_usize(p.index), shards)].push(p);
    }

    // One engine per shard, executed on a worker pool bounded by the host's
    // parallelism (a shard count far above the core count — even one per
    // hitlist entry — must degrade gracefully, not spawn thousands of OS
    // threads). Each engine gets the same round seed (keyed fault draws
    // must agree with the serial engine) but a shard-distinct auxiliary
    // RNG stream via `NetworkSim::new_shard`.
    struct ShardOutcome {
        catchments: CatchmentMap,
        cleaning: CleaningStats,
        rtts: Vec<(Block24, SimDuration)>,
        sim_stats: vp_sim::SimStats,
    }
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(shards);
    let mut batches: Vec<Vec<(usize, Vec<crate::prober::ScheduledProbe>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (k, shard_probes) in per_shard.into_iter().enumerate() {
        batches[k % workers].push((k, shard_probes));
    }
    let mut outcomes: Vec<(usize, ShardOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let faults = &faults;
                let send_time = &send_time;
                scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(k, shard_probes)| {
                            let mut sim =
                                NetworkSim::new_shard(world, faults.clone(), sim_seed, k as u64);
                            let svc =
                                sim.register_service(announcement.clone(), make_oracle(), false);
                            for p in shard_probes {
                                sim.send_at(p.at, p.packet);
                            }
                            sim.run();

                            let captures = sim.take_captures(svc);
                            let by_site = split_by_site(captures, num_sites);
                            let central = forward_to_central(by_site);
                            let (clean_replies, cleaning) = clean(
                                &central,
                                hitlist,
                                config.probe.ident,
                                start,
                                config.cutoff,
                            );
                            let catchments =
                                CatchmentMap::from_replies(&config.name, &clean_replies, hitlist);
                            let rtts = clean_replies
                                .iter()
                                .map(|r| {
                                    let block = hitlist.entry(conv::sat_usize(r.index)).block;
                                    (block, r.at.since(send_time[conv::sat_usize(r.index)]))
                                })
                                .collect();
                            (
                                k,
                                ShardOutcome {
                                    catchments,
                                    cleaning,
                                    rtts,
                                    sim_stats: sim.stats(),
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            // vp-lint: allow(h2): a worker panic must propagate, not be swallowed.
            .flat_map(|h| h.join().expect("shard engine thread panicked"))
            .collect()
    });
    outcomes.sort_by_key(|(k, _)| *k);

    // Deterministic merge in shard-index order. The shards cover disjoint
    // hitlist slices, so the unions are disjoint and the sums exact.
    let mut catchments = CatchmentMap::from_pairs(&config.name, std::iter::empty());
    let mut cleaning = CleaningStats::default();
    let mut rtts = BTreeMap::new();
    let mut sim_stats = vp_sim::SimStats::default();
    for (_, o) in &outcomes {
        catchments.merge(&o.catchments);
        cleaning.merge(&o.cleaning);
        rtts.extend(o.rtts.iter().copied());
        sim_stats.merge(&o.sim_stats);
    }

    ScanResult {
        catchments,
        cleaning,
        probes_sent,
        started: start,
        last_probe,
        rtts,
        sim_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_hitlist::HitlistConfig;
    use vp_sim::{Scenario, StaticOracle};
    use vp_topology::TopologyConfig;

    fn setup() -> (Scenario, Hitlist) {
        let s = Scenario::broot(TopologyConfig::tiny(81), 7);
        let hl = Hitlist::from_internet(
            &s.world,
            &HitlistConfig {
                wrong_addr_prob: 0.0,
                ..HitlistConfig::default()
            },
        );
        (s, hl)
    }

    #[test]
    fn clean_channel_maps_every_responsive_block_correctly() {
        let (s, hl) = setup();
        let table = s.routing();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            1,
        );
        let responsive = s.world.responsive_blocks().count();
        assert_eq!(result.catchments.len(), responsive);
        assert_eq!(result.probes_sent, hl.len() as u64);
        assert!(result.cleaning.is_consistent());
        // Ground truth check: every mapped block matches the routing table.
        for (block, site) in result.catchments.iter() {
            let info = s.world.block(block).unwrap();
            assert_eq!(Some(site), table.site_of_pop(info.pop), "block {block}");
        }
    }

    #[test]
    fn response_rate_tracks_world_responsiveness() {
        let (s, hl) = setup();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            1,
        );
        let rate = result.response_rate(hl.len());
        let world_rate = s.world.responsive_blocks().count() as f64 / s.world.blocks.len() as f64;
        assert!((rate - world_rate).abs() < 1e-9);
        assert_eq!(
            result.non_responding(hl.len()),
            hl.len() - result.catchments.len()
        );
    }

    #[test]
    fn faults_are_cleaned_out() {
        let (s, hl) = setup();
        let faults = FaultConfig {
            duplicate_prob: 0.3,
            max_duplicates: 10,
            alias_prob: 0.2,
            late_prob: 0.05,
            late_delay: SimDuration::from_mins(20),
            unsolicited_prob: 0.05,
            ..FaultConfig::none()
        };
        let table = s.routing();
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(table.clone())),
            faults,
            SimTime::ZERO,
            &ScanConfig::default(),
            2,
        );
        let st = result.cleaning;
        assert!(st.is_consistent());
        assert!(st.duplicates > 0, "no duplicates seen: {st:?}");
        assert!(st.unprobed_source > 0, "no aliased replies seen: {st:?}");
        assert!(st.late > 0, "no late replies seen: {st:?}");
        // Despite the noise, all surviving mappings are correct.
        for (block, site) in result.catchments.iter() {
            let info = s.world.block(block).unwrap();
            assert_eq!(Some(site), table.site_of_pop(info.pop));
        }
    }

    #[test]
    fn wrong_hitlist_targets_reduce_coverage() {
        let (s, _) = setup();
        let hl_bad = Hitlist::from_internet(
            &s.world,
            &HitlistConfig {
                wrong_addr_prob: 0.5,
                seed: 3,
            },
        );
        let result = run_scan(
            &s.world,
            &hl_bad,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            &ScanConfig::default(),
            1,
        );
        let responsive = s.world.responsive_blocks().count();
        assert!(
            result.catchments.len() < responsive * 3 / 4,
            "wrong targets should cut coverage: {} vs {responsive}",
            result.catchments.len()
        );
    }

    #[test]
    fn distinct_round_idents_separate_datasets() {
        let (s, hl) = setup();
        // Round 2's cleaning must reject replies carrying round 1's ident;
        // here we just check the config plumbs through.
        let cfg = ScanConfig {
            probe: ProbeConfig {
                ident: 42,
                ..ProbeConfig::default()
            },
            ..ScanConfig::default()
        };
        let result = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            FaultConfig::none(),
            SimTime::ZERO,
            &cfg,
            1,
        );
        assert!(result.cleaning.kept > 0);
        assert_eq!(result.cleaning.foreign, 0);
    }

    /// Asserts every observable field of two scan results is bit-identical.
    fn assert_results_identical(a: &ScanResult, b: &ScanResult) {
        assert_eq!(a.cleaning, b.cleaning, "cleaning stats differ");
        assert_eq!(a.probes_sent, b.probes_sent);
        assert_eq!(a.started, b.started);
        assert_eq!(a.last_probe, b.last_probe);
        assert_eq!(a.catchments.len(), b.catchments.len(), "map sizes differ");
        for (block, site) in a.catchments.iter() {
            assert_eq!(b.catchments.site_of(block), Some(site), "block {block}");
        }
        assert_eq!(a.rtts.len(), b.rtts.len(), "rtt map sizes differ");
        for (block, rtt) in &a.rtts {
            assert_eq!(b.rtts.get(block), Some(rtt), "rtt of {block}");
        }
        assert_eq!(a.sim_stats, b.sim_stats, "sim stats differ");
    }

    /// The fast equivalence gate: on the tiny topology, the sharded scan
    /// must reproduce the serial scan bit-for-bit under heavy faults, for
    /// every shard count.
    #[test]
    fn sharded_scan_is_bit_identical_to_serial() {
        let (s, hl) = setup();
        let faults = FaultConfig::default();
        let serial = run_scan(
            &s.world,
            &hl,
            &s.announcement,
            Box::new(StaticOracle::new(s.routing())),
            faults.clone(),
            SimTime::ZERO,
            &ScanConfig::default(),
            77,
        );
        for shards in [1, 2, 7, 16] {
            let sharded = run_scan_sharded(
                &s.world,
                &hl,
                &s.announcement,
                &|| Box::new(StaticOracle::new(s.routing())),
                faults.clone(),
                SimTime::ZERO,
                &ScanConfig::default(),
                77,
                shards,
            );
            assert_results_identical(&serial, &sharded);
        }
    }

    #[test]
    fn scan_is_deterministic() {
        let (s, hl) = setup();
        let run = || {
            run_scan(
                &s.world,
                &hl,
                &s.announcement,
                Box::new(StaticOracle::new(s.routing())),
                FaultConfig::default(),
                SimTime::ZERO,
                &ScanConfig::default(),
                9,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.cleaning, b.cleaning);
        assert_eq!(a.catchments.len(), b.catchments.len());
        for (block, site) in a.catchments.iter() {
            assert_eq!(b.catchments.site_of(block), Some(site));
        }
    }
}
