//! The catchment map: block → anycast site.
//!
//! Storage is **columnar**: two parallel, block-sorted columns
//! (`Vec<Block24>`, `Vec<SiteId>`) instead of a `BTreeMap`. At a million
//! mapped blocks that is 5 bytes of payload per entry in two contiguous
//! allocations — lookups are a binary search over one hot `u32` column and
//! merges are linear column zips, where the tree spent ~50+ bytes per entry
//! across pointer-chased nodes. The original tree engine survives as
//! [`reference::BTreeCatchment`]; the `columnar_equivalence` suite proves
//! the two agree byte-for-byte on every operation, so the columnar core
//! inherits the tree's contract (including serialized bytes) verbatim.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};
use vp_bgp::SiteId;
use vp_hitlist::Hitlist;
use vp_net::Block24;

use crate::cleaning::CleanReply;

/// The product of one Verfploeter measurement: for every responding block,
/// the anycast site its reply arrived at.
///
/// Entries are stored in block order, so iteration — and the serialized
/// [`CatchmentMap::to_json`] dataset — is canonical: two equal maps always
/// produce byte-identical JSON, and the bytes are exactly those of the
/// historical `BTreeMap`-backed engine (asserted by the
/// `columnar_equivalence` suite).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatchmentMap {
    /// Dataset tag, e.g. "SBV-5-15".
    pub name: String,
    /// Mapped blocks, strictly ascending.
    blocks: Vec<Block24>,
    /// Site of `blocks[i]`, parallel to `blocks`.
    sites: Vec<SiteId>,
}

impl CatchmentMap {
    /// Folds cleaned replies into the map. Cleaning guarantees one reply
    /// per hitlist index, hence one entry per block.
    pub fn from_replies(name: &str, replies: &[CleanReply], hitlist: &Hitlist) -> CatchmentMap {
        Self::from_pairs(
            name,
            replies.iter().map(|r| {
                let block = hitlist.entry(vp_net::conv::sat_usize(r.index)).block;
                (block, r.site)
            }),
        )
    }

    /// Builds a map directly from `(block, site)` pairs (used by analyses
    /// and tests). Later pairs win on duplicate blocks, matching map-insert
    /// semantics.
    pub fn from_pairs(name: &str, pairs: impl IntoIterator<Item = (Block24, SiteId)>) -> Self {
        let mut rows: Vec<(Block24, SiteId)> = pairs.into_iter().collect();
        // Stable sort keeps duplicate blocks in input order, so keeping the
        // last of each run reproduces `BTreeMap::insert` last-wins.
        rows.sort_by_key(|&(b, _)| b);
        let mut blocks: Vec<Block24> = Vec::with_capacity(rows.len());
        let mut sites: Vec<SiteId> = Vec::with_capacity(rows.len());
        for (b, s) in rows {
            if blocks.last() == Some(&b) {
                // vp-lint: allow(h2): last() == Some above proves non-emptiness.
                *sites.last_mut().expect("parallel columns") = s;
            } else {
                blocks.push(b);
                sites.push(s);
            }
        }
        CatchmentMap {
            name: name.to_owned(),
            blocks,
            sites,
        }
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The site a block maps to, if it responded.
    pub fn site_of(&self, block: Block24) -> Option<SiteId> {
        self.blocks
            .binary_search(&block)
            .ok()
            .map(|i| self.sites[i]) // vp-lint: allow(g1): binary_search ranks are below len and the columns are parallel.
    }

    /// Iterates all `(block, site)` entries in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (Block24, SiteId)> + '_ {
        self.blocks
            .iter()
            .copied()
            .zip(self.sites.iter().copied())
    }

    /// Absorbs another map's entries (disjoint union).
    ///
    /// Inputs are expected to cover disjoint block sets — the per-shard
    /// maps of one partitioned scan. Under that precondition the merge is
    /// associative and order-insensitive, so any shard merge order yields
    /// the same map. Columnar storage makes it a linear two-way zip of
    /// sorted columns.
    ///
    /// # Panics
    /// Panics (debug builds) if `other` maps a block this map already
    /// holds with a different site — that means the inputs were not
    /// shards of one scan.
    // vp-lint: merge-tested(CatchmentMap::merge, suite=columnar_equivalence)
    pub fn merge(&mut self, other: &CatchmentMap) {
        if other.is_empty() {
            return;
        }
        // Fast path: the common shard-merge case appends a strictly later
        // block range — a plain column extend, no re-sort.
        if self.blocks.last() < other.blocks.first() {
            self.blocks.extend_from_slice(&other.blocks);
            self.sites.extend_from_slice(&other.sites);
            return;
        }
        let mut blocks = Vec::with_capacity(self.blocks.len() + other.blocks.len());
        let mut sites = Vec::with_capacity(self.sites.len() + other.sites.len());
        let (mut i, mut j) = (0, 0);
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (self.blocks[i], other.blocks[j]); // vp-lint: allow(g1): i and j are bounded by the loop condition.
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    blocks.push(a);
                    sites.push(self.sites[i]); // vp-lint: allow(g1): columns are parallel.
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    blocks.push(b);
                    sites.push(other.sites[j]); // vp-lint: allow(g1): columns are parallel.
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let (sa, sb) = (self.sites[i], other.sites[j]); // vp-lint: allow(g1): columns are parallel.
                    debug_assert!(
                        sa == sb,
                        "merge inputs disagree on block {a}: {sa:?} vs {sb:?}"
                    );
                    blocks.push(b);
                    sites.push(sb); // other wins like map insert
                    j += 1;
                    i += 1;
                }
            }
        }
        blocks.extend_from_slice(&self.blocks[i..]); // vp-lint: allow(g1): i never exceeds len, per the loop condition.
        sites.extend_from_slice(&self.sites[i..]); // vp-lint: allow(g1): i never exceeds len, per the loop condition.
        blocks.extend_from_slice(&other.blocks[j..]); // vp-lint: allow(g1): j never exceeds len, per the loop condition.
        sites.extend_from_slice(&other.sites[j..]); // vp-lint: allow(g1): j never exceeds len, per the loop condition.
        self.blocks = blocks;
        self.sites = sites;
    }

    /// Mapped blocks per site.
    pub fn site_counts(&self) -> BTreeMap<SiteId, usize> {
        let mut m = BTreeMap::new();
        for s in &self.sites {
            *m.entry(*s).or_insert(0) += 1;
        }
        m
    }

    /// Fraction of mapped blocks that map to `site`.
    pub fn fraction_to(&self, site: SiteId) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let hits = self.sites.iter().filter(|&&s| s == site).count();
        hits as f64 / self.sites.len() as f64
    }

    /// Serializes the dataset to JSON (the paper releases all its
    /// datasets; this is the equivalent open-data format).
    pub fn to_json(&self) -> String {
        // vp-lint: allow(h2): serializing owned plain data cannot fail.
        serde_json::to_string(self).expect("catchment map serializes")
    }

    /// Reloads a dataset written by [`CatchmentMap::to_json`].
    pub fn from_json(s: &str) -> Result<CatchmentMap, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Blocks that changed site (or appeared/disappeared) between two maps:
    /// returns `(flipped, appeared, disappeared)` counts.
    pub fn diff(&self, other: &CatchmentMap) -> (usize, usize, usize) {
        let mut flipped = 0;
        let mut disappeared = 0;
        for (b, s) in self.iter() {
            match other.site_of(b) {
                Some(t) if t != s => flipped += 1,
                Some(_) => {}
                None => disappeared += 1,
            }
        }
        let appeared = other
            .blocks
            .iter()
            .filter(|b| self.site_of(**b).is_none())
            .count();
        (flipped, appeared, disappeared)
    }
}

/// Serialized form is the byte-identical successor of the historical
/// `#[derive(Serialize)]` on `{ name: String, map: BTreeMap<Block24,
/// SiteId> }`: an object with a "map" member keyed by decimal block
/// numbers. Goldens and released datasets depend on these exact bytes.
impl Serialize for CatchmentMap {
    fn to_value(&self) -> Value {
        let map: BTreeMap<String, Value> = self
            .iter()
            .map(|(b, s)| (b.0.to_string(), s.to_value()))
            .collect();
        let mut obj = BTreeMap::new();
        obj.insert("map".to_owned(), Value::Object(map));
        obj.insert("name".to_owned(), self.name.to_value());
        Value::Object(obj)
    }
}

impl Deserialize for CatchmentMap {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::msg("expected catchment map object"))?;
        let name = match obj.get("name") {
            Some(n) => String::from_value(n)?,
            None => return Err(serde::Error::msg("missing field name")),
        };
        let map = match obj.get("map") {
            Some(m) => BTreeMap::<Block24, SiteId>::from_value(m)?,
            None => return Err(serde::Error::msg("missing field map")),
        };
        Ok(CatchmentMap::from_pairs(&name, map))
    }
}

pub mod reference {
    //! The original `BTreeMap`-backed catchment engine, kept as the proof
    //! baseline for the columnar core. Not used by the pipeline; the
    //! `columnar_equivalence` suite drives both engines through identical
    //! operation sequences and asserts byte-identical serialized output.

    use std::collections::BTreeMap;

    use serde::{Deserialize, Serialize};
    use vp_bgp::SiteId;
    use vp_net::Block24;

    /// The historical tree-backed map, field-for-field the pre-columnar
    /// `CatchmentMap` (so its derived serialization defines the on-disk
    /// format the columnar engine must reproduce).
    #[derive(Debug, Clone, Default, Serialize, Deserialize)]
    pub struct BTreeCatchment {
        pub name: String,
        map: BTreeMap<Block24, SiteId>,
    }

    impl BTreeCatchment {
        /// Builds a map from `(block, site)` pairs; later pairs win.
        pub fn from_pairs(
            name: &str,
            pairs: impl IntoIterator<Item = (Block24, SiteId)>,
        ) -> Self {
            BTreeCatchment {
                name: name.to_owned(),
                map: pairs.into_iter().collect(),
            }
        }

        pub fn len(&self) -> usize {
            self.map.len()
        }

        pub fn is_empty(&self) -> bool {
            self.map.is_empty()
        }

        pub fn site_of(&self, block: Block24) -> Option<SiteId> {
            self.map.get(&block).copied()
        }

        pub fn iter(&self) -> impl Iterator<Item = (Block24, SiteId)> + '_ {
            self.map.iter().map(|(b, s)| (*b, *s))
        }

        /// Disjoint union, the tree way: per-entry inserts.
        // vp-lint: merge-tested(BTreeCatchment::merge, suite=columnar_equivalence)
        // vp-lint: cold(fn): reference-engine shard fold — runs once per shard at merge time, not per probe.
        pub fn merge(&mut self, other: &BTreeCatchment) {
            for (block, site) in &other.map {
                self.map.insert(*block, *site);
            }
        }

        /// Serializes via the derived impl — the format oracle.
        pub fn to_json(&self) -> String {
            // vp-lint: allow(h2): serializing owned plain data with derived impls cannot fail.
            serde_json::to_string(self).expect("catchment map serializes")
        }

        pub fn from_json(s: &str) -> Result<BTreeCatchment, serde_json::Error> {
            serde_json::from_str(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(name: &str, pairs: &[(u32, u8)]) -> CatchmentMap {
        CatchmentMap::from_pairs(
            name,
            pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))),
        )
    }

    #[test]
    fn counts_and_fractions() {
        let m = map("t", &[(1, 0), (2, 0), (3, 1), (4, 0)]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.site_of(Block24(3)), Some(SiteId(1)));
        assert_eq!(m.site_of(Block24(9)), None);
        let counts = m.site_counts();
        assert_eq!(counts[&SiteId(0)], 3);
        assert_eq!(counts[&SiteId(1)], 1);
        assert!((m.fraction_to(SiteId(0)) - 0.75).abs() < 1e-12);
        assert_eq!(m.fraction_to(SiteId(2)), 0.0);
    }

    #[test]
    fn empty_map() {
        let m = CatchmentMap::default();
        assert!(m.is_empty());
        assert_eq!(m.fraction_to(SiteId(0)), 0.0);
        assert!(m.site_counts().is_empty());
    }

    #[test]
    fn from_pairs_is_last_wins_and_sorted() {
        // Unsorted input with a duplicate block: the later pair must win,
        // like BTreeMap::insert, and iteration must come out sorted.
        let m = map("t", &[(5, 1), (2, 0), (5, 3), (1, 2)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.site_of(Block24(5)), Some(SiteId(3)));
        let order: Vec<u32> = m.iter().map(|(b, _)| b.0).collect();
        assert_eq!(order, vec![1, 2, 5]);
    }

    #[test]
    fn json_roundtrip_preserves_dataset() {
        let m = map("SBV-5-15", &[(1, 0), (2, 1), (300000, 3)]);
        let json = m.to_json();
        let back = CatchmentMap::from_json(&json).unwrap();
        assert_eq!(back.name, "SBV-5-15");
        assert_eq!(back.len(), 3);
        for (b, s) in m.iter() {
            assert_eq!(back.site_of(b), Some(s));
        }
        assert!(CatchmentMap::from_json("not json").is_err());
    }

    #[test]
    fn json_bytes_match_btree_reference() {
        // The format contract in miniature (the full proof lives in the
        // columnar_equivalence suite): same pairs, same bytes.
        let pairs = [(1u32, 0u8), (2, 1), (10, 2), (300000, 3)];
        let col = map("SBV-5-15", &pairs);
        let tree = reference::BTreeCatchment::from_pairs(
            "SBV-5-15",
            pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))),
        );
        assert_eq!(col.to_json(), tree.to_json());
    }

    #[test]
    fn merge_interleaved_and_appended() {
        let mut a = map("m", &[(1, 0), (5, 1)]);
        let b = map("m", &[(3, 2), (7, 3)]);
        a.merge(&b); // interleaved: slow path
        let c = map("m", &[(9, 1), (11, 0)]);
        a.merge(&c); // strictly later: append fast path
        let got: Vec<(u32, u8)> = a.iter().map(|(b, s)| (b.0, s.0)).collect();
        assert_eq!(got, vec![(1, 0), (3, 2), (5, 1), (7, 3), (9, 1), (11, 0)]);
        a.merge(&CatchmentMap::default());
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn diff_classifies_changes() {
        let a = map("a", &[(1, 0), (2, 0), (3, 1)]);
        let b = map("b", &[(1, 0), (2, 1), (4, 0)]);
        let (flipped, appeared, disappeared) = a.diff(&b);
        assert_eq!(flipped, 1); // block 2 changed site
        assert_eq!(appeared, 1); // block 4 new
        assert_eq!(disappeared, 1); // block 3 gone
        // Diff with self is null.
        assert_eq!(a.diff(&a), (0, 0, 0));
    }
}
