//! The catchment map: block → anycast site.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_bgp::SiteId;
use vp_hitlist::Hitlist;
use vp_net::Block24;

use crate::cleaning::CleanReply;

/// The product of one Verfploeter measurement: for every responding block,
/// the anycast site its reply arrived at.
///
/// Entries are stored in block order, so iteration — and the serialized
/// [`CatchmentMap::to_json`] dataset — is canonical: two equal maps always
/// produce byte-identical JSON.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CatchmentMap {
    /// Dataset tag, e.g. "SBV-5-15".
    pub name: String,
    map: BTreeMap<Block24, SiteId>,
}

impl CatchmentMap {
    /// Folds cleaned replies into the map. Cleaning guarantees one reply
    /// per hitlist index, hence one entry per block.
    pub fn from_replies(name: &str, replies: &[CleanReply], hitlist: &Hitlist) -> CatchmentMap {
        let mut map = BTreeMap::new();
        for r in replies {
            let block = hitlist.entry(vp_net::conv::sat_usize(r.index)).block;
            map.insert(block, r.site);
        }
        CatchmentMap {
            name: name.to_owned(),
            map,
        }
    }

    /// Builds a map directly from `(block, site)` pairs (used by analyses
    /// and tests).
    pub fn from_pairs(name: &str, pairs: impl IntoIterator<Item = (Block24, SiteId)>) -> Self {
        CatchmentMap {
            name: name.to_owned(),
            map: pairs.into_iter().collect(),
        }
    }

    /// Number of mapped blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The site a block maps to, if it responded.
    pub fn site_of(&self, block: Block24) -> Option<SiteId> {
        self.map.get(&block).copied()
    }

    /// Iterates all `(block, site)` entries in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (Block24, SiteId)> + '_ {
        self.map.iter().map(|(b, s)| (*b, *s))
    }

    /// Absorbs another map's entries (disjoint union).
    ///
    /// Inputs are expected to cover disjoint block sets — the per-shard
    /// maps of one partitioned scan. Under that precondition the merge is
    /// associative and order-insensitive, so any shard merge order yields
    /// the same map.
    ///
    /// # Panics
    /// Panics (debug builds) if `other` maps a block this map already
    /// holds with a different site — that means the inputs were not
    /// shards of one scan.
    pub fn merge(&mut self, other: &CatchmentMap) {
        for (block, site) in &other.map {
            let prev = self.map.insert(*block, *site);
            debug_assert!(
                prev.is_none() || prev == Some(*site),
                "merge inputs disagree on block {block}: {prev:?} vs {site:?}"
            );
        }
    }

    /// Mapped blocks per site.
    pub fn site_counts(&self) -> BTreeMap<SiteId, usize> {
        let mut m = BTreeMap::new();
        for s in self.map.values() {
            *m.entry(*s).or_insert(0) += 1;
        }
        m
    }

    /// Fraction of mapped blocks that map to `site`.
    pub fn fraction_to(&self, site: SiteId) -> f64 {
        if self.map.is_empty() {
            return 0.0;
        }
        let hits = self.map.values().filter(|&&s| s == site).count();
        hits as f64 / self.map.len() as f64
    }

    /// Serializes the dataset to JSON (the paper releases all its
    /// datasets; this is the equivalent open-data format).
    pub fn to_json(&self) -> String {
        // vp-lint: allow(h2): serializing owned plain data with derived impls cannot fail.
        serde_json::to_string(self).expect("catchment map serializes")
    }

    /// Reloads a dataset written by [`CatchmentMap::to_json`].
    pub fn from_json(s: &str) -> Result<CatchmentMap, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Blocks that changed site (or appeared/disappeared) between two maps:
    /// returns `(flipped, appeared, disappeared)` counts.
    pub fn diff(&self, other: &CatchmentMap) -> (usize, usize, usize) {
        let mut flipped = 0;
        let mut disappeared = 0;
        for (b, s) in &self.map {
            match other.map.get(b) {
                Some(t) if t != s => flipped += 1,
                Some(_) => {}
                None => disappeared += 1,
            }
        }
        let appeared = other
            .map
            .keys()
            .filter(|b| !self.map.contains_key(*b))
            .count();
        (flipped, appeared, disappeared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(name: &str, pairs: &[(u32, u8)]) -> CatchmentMap {
        CatchmentMap::from_pairs(
            name,
            pairs.iter().map(|&(b, s)| (Block24(b), SiteId(s))),
        )
    }

    #[test]
    fn counts_and_fractions() {
        let m = map("t", &[(1, 0), (2, 0), (3, 1), (4, 0)]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.site_of(Block24(3)), Some(SiteId(1)));
        assert_eq!(m.site_of(Block24(9)), None);
        let counts = m.site_counts();
        assert_eq!(counts[&SiteId(0)], 3);
        assert_eq!(counts[&SiteId(1)], 1);
        assert!((m.fraction_to(SiteId(0)) - 0.75).abs() < 1e-12);
        assert_eq!(m.fraction_to(SiteId(2)), 0.0);
    }

    #[test]
    fn empty_map() {
        let m = CatchmentMap::default();
        assert!(m.is_empty());
        assert_eq!(m.fraction_to(SiteId(0)), 0.0);
        assert!(m.site_counts().is_empty());
    }

    #[test]
    fn json_roundtrip_preserves_dataset() {
        let m = map("SBV-5-15", &[(1, 0), (2, 1), (300000, 3)]);
        let json = m.to_json();
        let back = CatchmentMap::from_json(&json).unwrap();
        assert_eq!(back.name, "SBV-5-15");
        assert_eq!(back.len(), 3);
        for (b, s) in m.iter() {
            assert_eq!(back.site_of(b), Some(s));
        }
        assert!(CatchmentMap::from_json("not json").is_err());
    }

    #[test]
    fn diff_classifies_changes() {
        let a = map("a", &[(1, 0), (2, 0), (3, 1)]);
        let b = map("b", &[(1, 0), (2, 1), (4, 0)]);
        let (flipped, appeared, disappeared) = a.diff(&b);
        assert_eq!(flipped, 1); // block 2 changed site
        assert_eq!(appeared, 1); // block 4 new
        assert_eq!(disappeared, 1); // block 3 gone
        // Diff with self is null.
        assert_eq!(a.diff(&a), (0, 0, 0));
    }
}
