//! Catchment divisions inside ASes and prefixes (Figs. 7 and 8).
//!
//! §6.2: prior work often assumed one VP can represent a whole AS. The
//! dense Verfploeter view shows large ASes split across anycast sites —
//! 12.7% of prefix-announcing ASes see more than one site, and ASes that
//! announce more prefixes see more sites (Fig. 7); prefixes longer than
//! /15 are usually single-site but large prefixes split further (Fig. 8).
//! Unstable VPs are removed first so flapping is not mistaken for a split.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use vp_bgp::SiteId;
use vp_net::conv;
use vp_net::{Asn, Block24};
use vp_topology::Internet;

use crate::catchment::CatchmentMap;

/// Sites seen per AS, with the AS's announced-prefix count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsDivision {
    pub asn: Asn,
    pub announced_prefixes: u32,
    pub sites_seen: u32,
    /// Blocks of this AS with a (stable) catchment observation.
    pub observed_blocks: u32,
}

/// Computes per-AS division records from a catchment map, skipping blocks
/// in `exclude` (the unstable set). ASes without any observed block are
/// omitted.
pub fn as_divisions(
    catchments: &CatchmentMap,
    world: &Internet,
    exclude: &BTreeSet<Block24>,
) -> Vec<AsDivision> {
    let mut sites: BTreeMap<Asn, BTreeSet<SiteId>> = BTreeMap::new();
    let mut blocks: BTreeMap<Asn, u32> = BTreeMap::new();
    for (block, site) in catchments.iter() {
        if exclude.contains(&block) {
            continue;
        }
        if let Some(info) = world.block(block) {
            sites.entry(info.origin).or_default().insert(site);
            *blocks.entry(info.origin).or_insert(0) += 1;
        }
    }
    sites
        .into_iter()
        .map(|(asn, s)| AsDivision {
            asn,
            announced_prefixes: world.announced_prefixes(asn),
            sites_seen: conv::sat_u32(s.len()),
            observed_blocks: blocks[&asn], // vp-lint: allow(g1): every asn keyed in `sites` gets a `blocks` entry in the same loop.
        })
        .collect()
}

/// Fraction of observed ASes seeing more than one site (the 12.7% result).
pub fn split_as_fraction(divisions: &[AsDivision]) -> f64 {
    if divisions.is_empty() {
        return 0.0;
    }
    divisions.iter().filter(|d| d.sites_seen > 1).count() as f64 / divisions.len() as f64
}

/// One Fig. 7 row: among ASes seeing exactly `sites` sites, the
/// distribution of their announced-prefix counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    pub sites: u32,
    pub ases: usize,
    /// 5th, 25th, 50th, 75th, 95th percentiles of announced prefixes.
    pub prefix_percentiles: [f64; 5],
}

/// Groups divisions by sites-seen and summarizes announced-prefix counts.
pub fn fig7_rows(divisions: &[AsDivision]) -> Vec<Fig7Row> {
    let mut by_sites: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for d in divisions {
        by_sites
            .entry(d.sites_seen)
            .or_default()
            .push(d.announced_prefixes as f64);
    }
    by_sites
        .into_iter()
        .map(|(sites, mut counts)| {
            counts.sort_by(f64::total_cmp);
            let pct = |p: f64| -> f64 {
                let idx = conv::index(conv::sat_f64_to_u32(((counts.len() - 1) as f64 * p).round()));
                counts[idx] // vp-lint: allow(g1): idx = round((len-1)*p) with p <= 1, always < len.
            };
            Fig7Row {
                sites,
                ases: counts.len(),
                prefix_percentiles: [pct(0.05), pct(0.25), pct(0.50), pct(0.75), pct(0.95)],
            }
        })
        .collect()
}

/// One Fig. 8 panel: for announced prefixes of one length, how many sites
/// the VPs inside each prefix see.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Row {
    pub prefix_len: u8,
    /// Announced prefixes of this length with ≥1 observed block.
    pub prefixes: usize,
    /// `fractions[k]` = fraction of those prefixes whose VPs see exactly
    /// `k+1` sites.
    pub fractions: Vec<f64>,
    /// Fraction of these prefixes covered by only a single observed VP.
    pub single_vp_fraction: f64,
}

/// Computes Fig. 8: per announced prefix, the number of distinct sites its
/// observed blocks see, grouped by prefix length.
pub fn fig8_rows(
    catchments: &CatchmentMap,
    world: &Internet,
    exclude: &BTreeSet<Block24>,
    max_sites: usize,
) -> Vec<Fig8Row> {
    // Per announced prefix: distinct sites and observed block count.
    let mut per_prefix: Vec<(BTreeSet<SiteId>, u32)> =
        vec![(BTreeSet::new(), 0); world.prefixes.len()];
    for (block, site) in catchments.iter() {
        if exclude.contains(&block) {
            continue;
        }
        if let Some(info) = world.block(block) {
            let slot = &mut per_prefix[conv::index(info.prefix_idx)]; // vp-lint: allow(g1): prefix_idx indexes world.prefixes and per_prefix is sized to it.
            slot.0.insert(site);
            slot.1 += 1;
        }
    }
    let mut grouped: BTreeMap<u8, Vec<&(BTreeSet<SiteId>, u32)>> = BTreeMap::new();
    for (i, slot) in per_prefix.iter().enumerate() {
        if slot.1 == 0 {
            continue;
        }
        grouped
            .entry(world.prefixes[i].prefix.len()) // vp-lint: allow(g1): per_prefix is sized to world.prefixes, so i indexes both.
            .or_default()
            .push(slot);
    }
    grouped
        .into_iter()
        .map(|(len, slots)| {
            let n = slots.len();
            let mut counts = vec![0usize; max_sites];
            let mut single_vp = 0usize;
            for (sites, blocks) in slots {
                let k = sites.len().clamp(1, max_sites);
                counts[k - 1] += 1; // vp-lint: allow(g1): k is clamped to 1..=max_sites and counts has max_sites slots.
                if *blocks == 1 {
                    single_vp += 1;
                }
            }
            Fig8Row {
                prefix_len: len,
                prefixes: n,
                fractions: counts.iter().map(|&c| c as f64 / n as f64).collect(),
                single_vp_fraction: single_vp as f64 / n as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::Scenario;
    use vp_topology::TopologyConfig;

    fn scenario() -> (Scenario, CatchmentMap) {
        let s = Scenario::tangled(TopologyConfig::tiny(131), 7);
        let table = s.routing();
        let map = CatchmentMap::from_pairs(
            "perfect",
            s.world
                .blocks
                .iter()
                .filter_map(|b| table.site_of_pop(b.pop).map(|site| (b.block, site))),
        );
        (s, map)
    }

    #[test]
    fn divisions_cover_all_observed_ases() {
        let (s, map) = scenario();
        let divs = as_divisions(&map, &s.world, &BTreeSet::new());
        let observed_ases: BTreeSet<Asn> = map
            .iter()
            .filter_map(|(b, _)| s.world.block(b).map(|i| i.origin))
            .collect();
        assert_eq!(divs.len(), observed_ases.len());
        for d in &divs {
            assert!(d.sites_seen >= 1);
            assert!(d.observed_blocks >= 1);
            assert_eq!(d.announced_prefixes, s.world.announced_prefixes(d.asn));
        }
    }

    #[test]
    fn some_ases_split_and_fraction_in_range() {
        let (s, map) = scenario();
        let divs = as_divisions(&map, &s.world, &BTreeSet::new());
        let frac = split_as_fraction(&divs);
        assert!(frac > 0.0, "no split ASes in nine-site world");
        assert!(frac < 1.0);
    }

    #[test]
    fn excluding_blocks_removes_observations() {
        let (s, map) = scenario();
        let all: BTreeSet<Block24> = map.iter().map(|(b, _)| b).collect();
        let divs = as_divisions(&map, &s.world, &all);
        assert!(divs.is_empty());
    }

    #[test]
    fn fig7_percentiles_are_ordered() {
        let (s, map) = scenario();
        let divs = as_divisions(&map, &s.world, &BTreeSet::new());
        let rows = fig7_rows(&divs);
        assert!(!rows.is_empty());
        let total: usize = rows.iter().map(|r| r.ases).sum();
        assert_eq!(total, divs.len());
        for r in &rows {
            let p = r.prefix_percentiles;
            assert!(p.windows(2).all(|w| w[0] <= w[1]), "{p:?} not sorted");
            assert!(p[0] >= 1.0, "every AS announces at least one prefix");
        }
    }

    #[test]
    fn fig7_split_ases_announce_more_prefixes() {
        // The paper's correlation: more announced prefixes -> more sites.
        let (s, map) = scenario();
        let divs = as_divisions(&map, &s.world, &BTreeSet::new());
        let rows = fig7_rows(&divs);
        if rows.len() >= 2 {
            let first = &rows[0];
            let last = &rows[rows.len() - 1];
            assert!(
                last.prefix_percentiles[2] >= first.prefix_percentiles[2],
                "median prefixes should not decrease with sites seen"
            );
        }
    }

    #[test]
    fn fig8_fractions_sum_to_one_per_length() {
        let (s, map) = scenario();
        let rows = fig8_rows(&map, &s.world, &BTreeSet::new(), 9);
        assert!(!rows.is_empty());
        for r in &rows {
            let sum: f64 = r.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "/{}: sum {sum}", r.prefix_len);
            assert!((0.0..=1.0).contains(&r.single_vp_fraction));
            assert!(r.prefixes > 0);
        }
    }

    #[test]
    fn fig8_sees_multi_site_prefixes_and_counts_match() {
        let (s, map) = scenario();
        let rows = fig8_rows(&map, &s.world, &BTreeSet::new(), 9);
        let multi: f64 = rows
            .iter()
            .map(|r| (1.0 - r.fractions[0]) * r.prefixes as f64)
            .sum();
        assert!(multi > 0.0, "no prefix splits across sites");
        // Every observed prefix is counted in exactly one length bucket.
        let counted: usize = rows.iter().map(|r| r.prefixes).sum();
        let observed: std::collections::HashSet<u32> = map
            .iter()
            .filter_map(|(b, _)| s.world.block(b).map(|i| i.prefix_idx))
            .collect();
        assert_eq!(counted, observed.len());
    }
}
