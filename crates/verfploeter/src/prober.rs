//! The prober: one paced ICMP Echo Request per hitlist entry.
//!
//! §3.1: probes are sent "from a designated measurement address that must
//! be in the anycast service IP prefix", "in a pseudorandom order", and
//! "relatively slowly (about 6k queries per second)" — 10k/s for the
//! Tangled rounds (§4.2) — with "a single request per destination IP
//! address, with no immediate retransmissions" and "a unique identifier in
//! the ICMP header ... in every measurement round".
//!
//! Each probe's payload carries a magic tag and the hitlist index, so the
//! central pipeline can pair replies with probes even when the replier
//! answers from a different address.

use bytes::{BufMut, Bytes, BytesMut};
use vp_hitlist::Hitlist;
use vp_net::{FeistelPermutation, Ipv4Addr, ProbeOrder, SimTime, TokenBucket};
use vp_packet::{IcmpMessage, Ipv4Packet, Protocol};

/// Magic prefix identifying Verfploeter probe payloads.
pub const PAYLOAD_MAGIC: &[u8; 4] = b"VPLT";

/// Probes encoded per [`Prober::build_probes`] batch: large enough to
/// amortize the batch's one wire-buffer allocation to noise, small enough
/// that a batch of 20-byte messages stays comfortably in L1.
pub const PROBE_BATCH: usize = 1024;

/// Probing parameters for one measurement round.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Probe rate in packets per second.
    pub rate_per_sec: f64,
    /// ICMP identifier of this round (data-set separation).
    pub ident: u16,
    /// Seed of the pseudorandom probe order.
    pub order_seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            rate_per_sec: 10_000.0,
            ident: 1,
            order_seed: 0x0bde,
        }
    }
}

/// A scheduled probe: when to send what.
#[derive(Debug, Clone)]
pub struct ScheduledProbe {
    pub at: SimTime,
    pub packet: Ipv4Packet,
    /// Index into the hitlist this probe targets.
    pub index: u64,
}

/// The prober: turns a hitlist into a paced, permuted probe schedule.
#[derive(Debug)]
pub struct Prober {
    config: ProbeConfig,
}

impl Prober {
    pub fn new(config: ProbeConfig) -> Self {
        assert!(config.rate_per_sec > 0.0, "rate must be positive");
        Prober { config }
    }

    /// Encodes the probe payload for a hitlist index.
    pub fn encode_payload(index: u64) -> Bytes {
        let mut b = BytesMut::with_capacity(12);
        b.extend_from_slice(PAYLOAD_MAGIC);
        b.put_u64(index);
        b.freeze()
    }

    /// Decodes a probe/reply payload back to the hitlist index.
    pub fn decode_payload(payload: &[u8]) -> Option<u64> {
        if payload.len() != 12 || payload.get(..4)? != PAYLOAD_MAGIC {
            return None;
        }
        Some(u64::from_be_bytes(payload.get(4..12)?.try_into().ok()?))
    }

    /// Walks the probe schedule — every hitlist index exactly once, in
    /// Feistel-permuted order, paced from `start` by a token bucket at the
    /// configured rate — calling `f(index, send_time)` per probe **without
    /// materializing any packet**. O(1) memory: the schedule is a pure
    /// function of `(n, order_seed, rate, start)`, so shard engines re-walk
    /// it to recover their slice of a million-probe round instead of
    /// holding the whole round in memory.
    pub fn walk_schedule(&self, n: u64, start: SimTime, mut f: impl FnMut(u64, SimTime)) {
        let perm = FeistelPermutation::new(n, self.config.order_seed);
        let mut bucket = TokenBucket::new(self.config.rate_per_sec, 1.0);
        let mut t = start;
        for i in 0..n {
            let index = perm.permute(i);
            // Advance to the next admission slot.
            t = bucket.next_available(t);
            let admitted = bucket.try_acquire(t);
            debug_assert!(admitted, "token bucket must admit at next_available");
            f(index, t);
        }
    }

    /// Materializes the probe packet for one hitlist index: an ICMP Echo
    /// Request from `source` carrying the round ident and the index-tagged
    /// payload.
    pub fn build_probe(&self, hitlist: &Hitlist, index: u64, source: Ipv4Addr) -> Ipv4Packet {
        let entry = hitlist.entry(vp_net::conv::sat_usize(index));
        let icmp = IcmpMessage::echo_request(
            self.config.ident,
            vp_net::conv::sat_u16(index & 0xffff),
            Self::encode_payload(index),
        );
        let mut packet = Ipv4Packet::new(source, entry.target, Protocol::Icmp, icmp.emit());
        packet.ident = self.config.ident;
        packet
    }

    /// Materializes the probes for a slice of hitlist indices into `out` —
    /// wire-identical to calling [`Prober::build_probe`] per index (the
    /// equivalence suite pins this), but with the hot-loop cost profile:
    /// the whole batch's ICMP images live in **one shared buffer**
    /// ([`vp_packet::icmp::encode_batch`]), each packet payload a
    /// zero-copy view of it, and per-probe checksums derived
    /// incrementally instead of re-summed. Steady-state heap allocations
    /// per probe: zero (the batch buffer and `out`'s reservation amortize
    /// across the batch; the allocation-witness test counts this).
    // vp-lint: allow(g1): `i < indices.len()` by encode_batch's contract, and payloads are exactly the 12 declared bytes.
    pub fn build_probes(
        &self,
        hitlist: &Hitlist,
        indices: &[u64],
        source: Ipv4Addr,
        out: &mut Vec<Ipv4Packet>,
    ) {
        out.clear();
        out.reserve(indices.len());
        vp_packet::icmp::encode_batch(
            self.config.ident,
            12,
            indices.len(),
            |i, seq, payload| {
                let index = indices[i];
                *seq = vp_net::conv::sat_u16(index & 0xffff);
                payload[..4].copy_from_slice(PAYLOAD_MAGIC);
                payload[4..].copy_from_slice(&index.to_be_bytes());
            },
            |i, wire| {
                let index = indices[i];
                let entry = hitlist.entry(vp_net::conv::sat_usize(index));
                let mut packet = Ipv4Packet::new(source, entry.target, Protocol::Icmp, wire);
                packet.ident = self.config.ident;
                out.push(packet);
            },
        );
    }

    /// [`Prober::build_probes`] plus each probe's precomputed **echo
    /// reply** wire image (via
    /// [`vp_packet::icmp::encode_batch_with_replies`]): `out[i]`'s reply
    /// image lands in `reply_images[i]`, byte-identical to what the
    /// simulated responder's parse → reply → emit chain would serialize.
    /// Handing the image to the engine with the probe lets responders
    /// answer without allocating per reply — the last per-probe
    /// allocation the witness test retired. Payloads carry the nonzero
    /// `VPLT` magic, satisfying the reply encoder's checksum
    /// precondition.
    // vp-lint: allow(g1): `i < indices.len()` by encode_batch_with_replies's contract, and payloads are exactly the 12 declared bytes.
    pub fn build_probes_with_replies(
        &self,
        hitlist: &Hitlist,
        indices: &[u64],
        source: Ipv4Addr,
        out: &mut Vec<Ipv4Packet>,
        reply_images: &mut Vec<Bytes>,
    ) {
        out.clear();
        out.reserve(indices.len());
        reply_images.clear();
        reply_images.reserve(indices.len());
        vp_packet::icmp::encode_batch_with_replies(
            self.config.ident,
            12,
            indices.len(),
            |i, seq, payload| {
                let index = indices[i];
                *seq = vp_net::conv::sat_u16(index & 0xffff);
                payload[..4].copy_from_slice(PAYLOAD_MAGIC);
                payload[4..].copy_from_slice(&index.to_be_bytes());
            },
            |i, wire, reply| {
                let index = indices[i];
                let entry = hitlist.entry(vp_net::conv::sat_usize(index));
                let mut packet = Ipv4Packet::new(source, entry.target, Protocol::Icmp, wire);
                packet.ident = self.config.ident;
                out.push(packet);
                reply_images.push(reply);
            },
        );
    }

    /// Builds the full probe schedule as a vector: every hitlist entry
    /// exactly once, in Feistel-permuted order, paced from `start` by a
    /// token bucket at the configured rate. `source` must be the
    /// measurement address inside the anycast prefix. Convenience wrapper
    /// over [`Prober::walk_schedule`] + [`Prober::build_probe`] — at
    /// million-target scale prefer the streaming pair.
    pub fn schedule(&self, hitlist: &Hitlist, source: Ipv4Addr, start: SimTime) -> Vec<ScheduledProbe> {
        let mut out = Vec::with_capacity(hitlist.len());
        self.walk_schedule(hitlist.len() as u64, start, |index, at| {
            out.push(ScheduledProbe {
                at,
                packet: self.build_probe(hitlist, index, source),
                index,
            });
        });
        out
    }

    /// Expected duration of a full round at the configured rate.
    pub fn expected_duration(&self, targets: usize) -> vp_net::SimDuration {
        vp_net::SimDuration::from_secs_f64(targets as f64 / self.config.rate_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use vp_hitlist::HitlistConfig;
    use vp_topology::{Internet, TopologyConfig};

    fn hitlist() -> (Internet, Hitlist) {
        let w = Internet::generate(TopologyConfig::tiny(61));
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        (w, hl)
    }

    #[test]
    fn payload_roundtrip() {
        for index in [0u64, 1, 65535, 1 << 40] {
            let p = Prober::encode_payload(index);
            assert_eq!(Prober::decode_payload(&p), Some(index));
        }
        assert_eq!(Prober::decode_payload(b"nope"), None);
        assert_eq!(Prober::decode_payload(&[]), None);
        assert_eq!(Prober::decode_payload(&[0u8; 12]), None);
    }

    #[test]
    fn schedule_covers_every_target_once() {
        let (_, hl) = hitlist();
        let prober = Prober::new(ProbeConfig::default());
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        assert_eq!(probes.len(), hl.len());
        let indexes: HashSet<u64> = probes.iter().map(|p| p.index).collect();
        assert_eq!(indexes.len(), hl.len());
        for p in &probes {
            let entry = hl.entry(p.index as usize);
            assert_eq!(p.packet.dst, entry.target);
        }
    }

    #[test]
    fn schedule_is_paced_at_rate() {
        let (_, hl) = hitlist();
        let cfg = ProbeConfig {
            rate_per_sec: 1000.0,
            ..ProbeConfig::default()
        };
        let prober = Prober::new(cfg);
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        let last = probes.last().unwrap().at;
        let expected_secs = hl.len() as f64 / 1000.0;
        let actual = last.as_secs_f64();
        assert!(
            (actual - expected_secs).abs() / expected_secs < 0.02,
            "round took {actual:.2}s, expected ~{expected_secs:.2}s"
        );
        // Monotone non-decreasing send times.
        for w in probes.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn order_is_permuted_not_sequential() {
        let (_, hl) = hitlist();
        let prober = Prober::new(ProbeConfig::default());
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        let sequential = probes.windows(2).filter(|w| w[1].index == w[0].index + 1).count();
        assert!(
            (sequential as f64) < probes.len() as f64 * 0.01,
            "{sequential} sequential pairs"
        );
    }

    #[test]
    fn probes_carry_round_ident_and_payload() {
        let (_, hl) = hitlist();
        let cfg = ProbeConfig {
            ident: 0x77,
            ..ProbeConfig::default()
        };
        let prober = Prober::new(cfg);
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        for p in probes.iter().take(20) {
            let msg = vp_packet::IcmpMessage::parse(&p.packet.payload).unwrap();
            assert_eq!(msg.ident(), Some(0x77));
            match msg {
                vp_packet::IcmpMessage::EchoRequest { payload, .. } => {
                    assert_eq!(Prober::decode_payload(&payload), Some(p.index));
                }
                other => panic!("expected request, got {other:?}"),
            }
        }
    }

    #[test]
    fn batched_build_is_bit_identical_to_single_build() {
        // The §7 contract rides on this: the batched path must produce
        // the exact packets (bytes and struct fields) of the reference
        // single-probe encoder, in schedule order.
        let (_, hl) = hitlist();
        let cfg = ProbeConfig {
            ident: 0x4242,
            ..ProbeConfig::default()
        };
        let prober = Prober::new(cfg);
        let source = Ipv4Addr::new(240, 0, 0, 1);
        let mut indices: Vec<u64> = Vec::new();
        prober.walk_schedule(hl.len() as u64, SimTime::ZERO, |index, _| indices.push(index));
        let mut batched = Vec::new();
        for chunk in indices.chunks(97) {
            let mut out = Vec::new();
            prober.build_probes(&hl, chunk, source, &mut out);
            batched.extend(out);
        }
        assert_eq!(batched.len(), indices.len());
        for (i, index) in indices.iter().enumerate() {
            let single = prober.build_probe(&hl, *index, source);
            assert_eq!(batched[i], single, "probe {i} (hitlist index {index})");
            assert_eq!(&batched[i].payload[..], &single.payload[..]);
        }
    }

    #[test]
    fn reply_images_match_responder_serialization() {
        // The precomputed reply image must be byte-identical to what a
        // responder would serialize from the received probe: parse the
        // probe, form the reply, emit it. This is the bit-equivalence
        // the engine's precomputed-reply fast path rides on.
        let (_, hl) = hitlist();
        let prober = Prober::new(ProbeConfig {
            ident: 0x77aa,
            ..ProbeConfig::default()
        });
        let source = Ipv4Addr::new(240, 0, 0, 1);
        let indices: Vec<u64> = (0..hl.len() as u64).collect();
        for chunk in indices.chunks(113) {
            let mut packets = Vec::new();
            let mut images = Vec::new();
            prober.build_probes_with_replies(&hl, chunk, source, &mut packets, &mut images);
            assert_eq!(packets.len(), chunk.len());
            assert_eq!(images.len(), chunk.len());
            // Packets are the same as the image-less builder's.
            let mut reference = Vec::new();
            prober.build_probes(&hl, chunk, source, &mut reference);
            assert_eq!(packets, reference);
            for (packet, image) in packets.iter().zip(&images) {
                let parsed = vp_packet::IcmpMessage::parse_view(&packet.payload).unwrap();
                let responder = parsed.reply().expect("probes are echo requests").emit();
                assert_eq!(&image[..], &responder[..]);
            }
        }
    }

    #[test]
    fn expected_duration_matches_rate() {
        let prober = Prober::new(ProbeConfig {
            rate_per_sec: 6000.0,
            ..ProbeConfig::default()
        });
        // The paper's B-Root scan: 6.4M targets at 6k/s ≈ 17.8 min; at the
        // paper's quoted "10 or 20 minutes" scale.
        let d = prober.expected_duration(6_400_000);
        let mins = d.as_secs() / 60;
        assert!((15..22).contains(&mins), "duration {mins} min");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        Prober::new(ProbeConfig {
            rate_per_sec: 0.0,
            ..ProbeConfig::default()
        });
    }
}
