//! The prober: one paced ICMP Echo Request per hitlist entry.
//!
//! §3.1: probes are sent "from a designated measurement address that must
//! be in the anycast service IP prefix", "in a pseudorandom order", and
//! "relatively slowly (about 6k queries per second)" — 10k/s for the
//! Tangled rounds (§4.2) — with "a single request per destination IP
//! address, with no immediate retransmissions" and "a unique identifier in
//! the ICMP header ... in every measurement round".
//!
//! Each probe's payload carries a magic tag and the hitlist index, so the
//! central pipeline can pair replies with probes even when the replier
//! answers from a different address.

use bytes::{BufMut, Bytes, BytesMut};
use vp_hitlist::Hitlist;
use vp_net::{FeistelPermutation, Ipv4Addr, ProbeOrder, SimTime, TokenBucket};
use vp_packet::{IcmpMessage, Ipv4Packet, Protocol};

/// Magic prefix identifying Verfploeter probe payloads.
pub const PAYLOAD_MAGIC: &[u8; 4] = b"VPLT";

/// Probing parameters for one measurement round.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Probe rate in packets per second.
    pub rate_per_sec: f64,
    /// ICMP identifier of this round (data-set separation).
    pub ident: u16,
    /// Seed of the pseudorandom probe order.
    pub order_seed: u64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            rate_per_sec: 10_000.0,
            ident: 1,
            order_seed: 0x0bde,
        }
    }
}

/// A scheduled probe: when to send what.
#[derive(Debug, Clone)]
pub struct ScheduledProbe {
    pub at: SimTime,
    pub packet: Ipv4Packet,
    /// Index into the hitlist this probe targets.
    pub index: u64,
}

/// The prober: turns a hitlist into a paced, permuted probe schedule.
#[derive(Debug)]
pub struct Prober {
    config: ProbeConfig,
}

impl Prober {
    pub fn new(config: ProbeConfig) -> Self {
        assert!(config.rate_per_sec > 0.0, "rate must be positive");
        Prober { config }
    }

    /// Encodes the probe payload for a hitlist index.
    pub fn encode_payload(index: u64) -> Bytes {
        let mut b = BytesMut::with_capacity(12);
        b.extend_from_slice(PAYLOAD_MAGIC);
        b.put_u64(index);
        b.freeze()
    }

    /// Decodes a probe/reply payload back to the hitlist index.
    pub fn decode_payload(payload: &[u8]) -> Option<u64> {
        if payload.len() != 12 || payload.get(..4)? != PAYLOAD_MAGIC {
            return None;
        }
        Some(u64::from_be_bytes(payload.get(4..12)?.try_into().ok()?))
    }

    /// Walks the probe schedule — every hitlist index exactly once, in
    /// Feistel-permuted order, paced from `start` by a token bucket at the
    /// configured rate — calling `f(index, send_time)` per probe **without
    /// materializing any packet**. O(1) memory: the schedule is a pure
    /// function of `(n, order_seed, rate, start)`, so shard engines re-walk
    /// it to recover their slice of a million-probe round instead of
    /// holding the whole round in memory.
    pub fn walk_schedule(&self, n: u64, start: SimTime, mut f: impl FnMut(u64, SimTime)) {
        let perm = FeistelPermutation::new(n, self.config.order_seed);
        let mut bucket = TokenBucket::new(self.config.rate_per_sec, 1.0);
        let mut t = start;
        for i in 0..n {
            let index = perm.permute(i);
            // Advance to the next admission slot.
            t = bucket.next_available(t);
            let admitted = bucket.try_acquire(t);
            debug_assert!(admitted, "token bucket must admit at next_available");
            f(index, t);
        }
    }

    /// Materializes the probe packet for one hitlist index: an ICMP Echo
    /// Request from `source` carrying the round ident and the index-tagged
    /// payload.
    pub fn build_probe(&self, hitlist: &Hitlist, index: u64, source: Ipv4Addr) -> Ipv4Packet {
        let entry = hitlist.entry(vp_net::conv::sat_usize(index));
        let icmp = IcmpMessage::echo_request(
            self.config.ident,
            vp_net::conv::sat_u16(index & 0xffff),
            Self::encode_payload(index),
        );
        let mut packet = Ipv4Packet::new(source, entry.target, Protocol::Icmp, icmp.emit());
        packet.ident = self.config.ident;
        packet
    }

    /// Builds the full probe schedule as a vector: every hitlist entry
    /// exactly once, in Feistel-permuted order, paced from `start` by a
    /// token bucket at the configured rate. `source` must be the
    /// measurement address inside the anycast prefix. Convenience wrapper
    /// over [`Prober::walk_schedule`] + [`Prober::build_probe`] — at
    /// million-target scale prefer the streaming pair.
    pub fn schedule(&self, hitlist: &Hitlist, source: Ipv4Addr, start: SimTime) -> Vec<ScheduledProbe> {
        let mut out = Vec::with_capacity(hitlist.len());
        self.walk_schedule(hitlist.len() as u64, start, |index, at| {
            out.push(ScheduledProbe {
                at,
                packet: self.build_probe(hitlist, index, source),
                index,
            });
        });
        out
    }

    /// Expected duration of a full round at the configured rate.
    pub fn expected_duration(&self, targets: usize) -> vp_net::SimDuration {
        vp_net::SimDuration::from_secs_f64(targets as f64 / self.config.rate_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use vp_hitlist::HitlistConfig;
    use vp_topology::{Internet, TopologyConfig};

    fn hitlist() -> (Internet, Hitlist) {
        let w = Internet::generate(TopologyConfig::tiny(61));
        let hl = Hitlist::from_internet(&w, &HitlistConfig::default());
        (w, hl)
    }

    #[test]
    fn payload_roundtrip() {
        for index in [0u64, 1, 65535, 1 << 40] {
            let p = Prober::encode_payload(index);
            assert_eq!(Prober::decode_payload(&p), Some(index));
        }
        assert_eq!(Prober::decode_payload(b"nope"), None);
        assert_eq!(Prober::decode_payload(&[]), None);
        assert_eq!(Prober::decode_payload(&[0u8; 12]), None);
    }

    #[test]
    fn schedule_covers_every_target_once() {
        let (_, hl) = hitlist();
        let prober = Prober::new(ProbeConfig::default());
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        assert_eq!(probes.len(), hl.len());
        let indexes: HashSet<u64> = probes.iter().map(|p| p.index).collect();
        assert_eq!(indexes.len(), hl.len());
        for p in &probes {
            let entry = hl.entry(p.index as usize);
            assert_eq!(p.packet.dst, entry.target);
        }
    }

    #[test]
    fn schedule_is_paced_at_rate() {
        let (_, hl) = hitlist();
        let cfg = ProbeConfig {
            rate_per_sec: 1000.0,
            ..ProbeConfig::default()
        };
        let prober = Prober::new(cfg);
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        let last = probes.last().unwrap().at;
        let expected_secs = hl.len() as f64 / 1000.0;
        let actual = last.as_secs_f64();
        assert!(
            (actual - expected_secs).abs() / expected_secs < 0.02,
            "round took {actual:.2}s, expected ~{expected_secs:.2}s"
        );
        // Monotone non-decreasing send times.
        for w in probes.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn order_is_permuted_not_sequential() {
        let (_, hl) = hitlist();
        let prober = Prober::new(ProbeConfig::default());
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        let sequential = probes.windows(2).filter(|w| w[1].index == w[0].index + 1).count();
        assert!(
            (sequential as f64) < probes.len() as f64 * 0.01,
            "{sequential} sequential pairs"
        );
    }

    #[test]
    fn probes_carry_round_ident_and_payload() {
        let (_, hl) = hitlist();
        let cfg = ProbeConfig {
            ident: 0x77,
            ..ProbeConfig::default()
        };
        let prober = Prober::new(cfg);
        let probes = prober.schedule(&hl, Ipv4Addr::new(240, 0, 0, 1), SimTime::ZERO);
        for p in probes.iter().take(20) {
            let msg = vp_packet::IcmpMessage::parse(&p.packet.payload).unwrap();
            assert_eq!(msg.ident(), Some(0x77));
            match msg {
                vp_packet::IcmpMessage::EchoRequest { payload, .. } => {
                    assert_eq!(Prober::decode_payload(&payload), Some(p.index));
                }
                other => panic!("expected request, got {other:?}"),
            }
        }
    }

    #[test]
    fn expected_duration_matches_rate() {
        let prober = Prober::new(ProbeConfig {
            rate_per_sec: 6000.0,
            ..ProbeConfig::default()
        });
        // The paper's B-Root scan: 6.4M targets at 6k/s ≈ 17.8 min; at the
        // paper's quoted "10 or 20 minutes" scale.
        let d = prober.expected_duration(6_400_000);
        let mins = d.as_secs() / 60;
        assert!((15..22).contains(&mins), "duration {mins} min");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        Prober::new(ProbeConfig {
            rate_per_sec: 0.0,
            ..ProbeConfig::default()
        });
    }
}
