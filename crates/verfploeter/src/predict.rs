//! Load prediction vs measured load (Table 6, Figs. 5 and 6).
//!
//! The paper's §5.5 workflow: map catchments with Verfploeter, weight each
//! mapped block by its historical query volume, and compare the predicted
//! per-site split against the split actually measured at the sites. The
//! measured side here is a ground-truth replay: every traffic-sending
//! block's queries are delivered to the site its routing actually selects
//! — which is what B-Root's site logs record.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vp_bgp::{RoutingTable, SiteId};
use vp_dns::QueryLog;

use crate::catchment::CatchmentMap;
use crate::load::load_fraction_to;

/// One row of Table 6: a method, what it measures, and the split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRow {
    pub date: String,
    pub method: String,
    /// Human description of the measurement size (e.g. "9,682 VPs").
    pub measurement: String,
    /// Fraction of the measured quantity going to the reference site.
    pub fraction: f64,
}

/// The actually *measured* load split: queries of every traffic-sending
/// block delivered to its true site under `routing`. Returns the fraction
/// arriving at `site`.
pub fn actual_load_fraction(routing: &RoutingTable, log: &QueryLog, site: SiteId) -> f64 {
    let world = log.world();
    let mut at_site = 0.0;
    let mut total = 0.0;
    for (i, b) in world.blocks.iter().enumerate() {
        let q = log.daily_by_idx(i);
        if q <= 0.0 {
            continue;
        }
        total += q;
        if routing.site_of_pop(b.pop) == Some(site) {
            at_site += q;
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        at_site / total
    }
}

/// Predicted per-site load over hourly bins (Fig. 6): for each UTC hour,
/// queries/sec per site, with `None` = the unmappable "UNKNOWN" share.
pub fn hourly_prediction(
    catchments: &CatchmentMap,
    log: &QueryLog,
) -> Vec<BTreeMap<Option<SiteId>, f64>> {
    let world = log.world();
    let mut hours: Vec<BTreeMap<Option<SiteId>, f64>> = vec![BTreeMap::new(); 24];
    for (i, b) in world.blocks.iter().enumerate() {
        if log.daily_by_idx(i) <= 0.0 {
            continue;
        }
        let site = catchments.site_of(b.block);
        for (h, slot) in hours.iter_mut().enumerate() {
            *slot.entry(site).or_insert(0.0) += log.hourly_by_idx(i, vp_net::conv::sat_u32(h)) / 3600.0;
        }
    }
    hours
}

/// The prediction error of a load-weighted catchment map against the
/// ground-truth replay, in absolute percentage points at `site`.
pub fn prediction_error_pp(
    catchments: &CatchmentMap,
    routing: &RoutingTable,
    log: &QueryLog,
    site: SiteId,
) -> f64 {
    let predicted = load_fraction_to(catchments, log, site);
    let actual = actual_load_fraction(routing, log, site);
    (predicted - actual).abs() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_dns::LoadModel;
    use vp_sim::Scenario;
    use vp_topology::TopologyConfig;

    fn setup() -> (Scenario, RoutingTable) {
        let s = Scenario::broot(TopologyConfig::tiny(111), 7);
        let table = s.routing();
        (s, table)
    }

    /// A catchment map that exactly matches the routing table (what a
    /// perfect fault-free scan of fully responsive blocks would produce).
    fn perfect_map(s: &Scenario, table: &RoutingTable) -> CatchmentMap {
        CatchmentMap::from_pairs(
            "perfect",
            s.world
                .blocks
                .iter()
                .filter_map(|b| table.site_of_pop(b.pop).map(|site| (b.block, site))),
        )
    }

    #[test]
    fn perfect_map_predicts_actual_exactly() {
        let (s, table) = setup();
        let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
        let map = perfect_map(&s, &table);
        for site in s.announcement.sites.iter() {
            let err = prediction_error_pp(&map, &table, &log, site.id);
            assert!(err < 1e-9, "site {}: error {err}pp", site.name);
        }
    }

    #[test]
    fn actual_fractions_sum_to_one() {
        let (s, table) = setup();
        let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
        let total: f64 = s
            .announcement
            .sites
            .iter()
            .map(|site| actual_load_fraction(&table, &log, site.id))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn partial_map_has_bounded_error() {
        let (s, table) = setup();
        let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
        let map = perfect_map(&s, &table);
        // Remove 30% of entries — prediction should still be close because
        // unknown blocks are assumed to split like known ones.
        let partial = CatchmentMap::from_pairs(
            "partial",
            map.iter().filter(|(b, _)| b.0 % 10 >= 3),
        );
        let site = s.announcement.sites[0].id;
        let err = prediction_error_pp(&partial, &table, &log, site);
        assert!(err < 12.0, "error {err}pp too large");
    }

    #[test]
    fn hourly_prediction_sums_to_daily_split() {
        let (s, table) = setup();
        let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
        let map = perfect_map(&s, &table);
        let hours = hourly_prediction(&map, &log);
        assert_eq!(hours.len(), 24);
        // Sum of q/s × 3600 over hours ≈ daily split.
        let split = crate::load::load_split(&map, &log);
        for (site, daily) in &split {
            let from_hours: f64 = hours
                .iter()
                .map(|h| h.get(site).copied().unwrap_or(0.0) * 3600.0)
                .sum();
            let rel = (from_hours - daily).abs() / daily.max(1.0);
            assert!(rel < 0.05, "site {site:?}: {from_hours} vs {daily}");
        }
    }

    #[test]
    fn stale_catchments_predict_worse_than_fresh() {
        // §5.5's long-duration observation: predicting with a month-old
        // catchment map is worse than with a same-day one.
        let (s, table_now) = setup();
        let log = QueryLog::ditl(&s.world, LoadModel::default(), "L");
        let fresh = perfect_map(&s, &table_now);
        // "April" routing: same world, different announcement (prepending
        // changed between the dates, as B-Root actually did).
        let mut old_ann = s.announcement.clone();
        old_ann.set_prepend("LAX", 3);
        let table_old = s.routing_for(&old_ann);
        let stale = CatchmentMap::from_pairs(
            "stale",
            s.world
                .blocks
                .iter()
                .filter_map(|b| table_old.site_of_pop(b.pop).map(|site| (b.block, site))),
        );
        // The routing change must affect some traffic-sending block for the
        // stale map to mispredict.
        let moved_load: f64 = s
            .world
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| table_old.site_of_pop(b.pop) != table_now.site_of_pop(b.pop))
            .map(|(i, _)| log.daily_by_idx(i))
            .sum();
        assert!(moved_load > 0.0, "prepending moved no traffic-sending block");
        let site = s.announcement.sites[0].id;
        let err_fresh = prediction_error_pp(&fresh, &table_now, &log, site);
        let err_stale = prediction_error_pp(&stale, &table_now, &log, site);
        assert!(
            err_stale > err_fresh,
            "stale {err_stale}pp should exceed fresh {err_fresh}pp"
        );
    }
}
