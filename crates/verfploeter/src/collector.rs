//! Reply collection: per-site capture, central aggregation.
//!
//! §3.1: "We must capture traffic for the measurement address ... These
//! captures must happen concurrently at all anycast sites" and "we copy
//! all responses to a central site for analysis ... with a custom program
//! that forwards traffic after tagging it with its site." This module is
//! that custom program: one forwarding worker per site on the blessed
//! [`ShardExecutor`] (one result channel per site, received in site-id
//! order), and a deterministic (time, site, source) merge order.

use vp_bgp::SiteId;
use vp_net::{Ipv4Addr, SimTime};
use vp_packet::IcmpMessage;
use vp_sim::{ShardExecutor, SiteCapture};

/// A reply as it arrives at the central analysis point: parsed, tagged with
/// the capturing site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawReply {
    pub site: SiteId,
    pub at: SimTime,
    pub src: Ipv4Addr,
    /// ICMP identifier of the reply.
    pub ident: u16,
    /// Decoded hitlist index from the payload, if the payload was ours.
    pub index: Option<u64>,
}

/// Parses one site capture into a [`RawReply`]; non-ICMP or non-echo-reply
/// traffic is discarded here (the capture filter on the measurement
/// address).
pub fn parse_capture(cap: &SiteCapture) -> Option<RawReply> {
    if cap.packet.protocol != vp_packet::Protocol::Icmp {
        return None;
    }
    match IcmpMessage::parse_view(&cap.packet.payload) {
        Ok(IcmpMessage::EchoReply { ident, payload, .. }) => Some(RawReply {
            site: cap.site,
            at: cap.at,
            src: cap.packet.src,
            ident,
            index: crate::prober::Prober::decode_payload(&payload),
        }),
        _ => None,
    }
}

/// Forwards per-site captures to a central aggregator, one worker per
/// site on the blessed executor — the concurrent collection pipeline of
/// §3.1. The merged stream is returned sorted by `(time, site, src)` so
/// downstream processing is deterministic regardless of thread scheduling.
pub fn forward_to_central(captures_by_site: Vec<Vec<SiteCapture>>) -> Vec<RawReply> {
    let sites = captures_by_site.len();
    forward_to_central_on(&ShardExecutor::host_parallel(sites), captures_by_site)
}

/// [`forward_to_central`] with an explicit executor. The sharded scan
/// path passes [`ShardExecutor::serial`] because it calls this from
/// inside a shard worker thread, where nesting another pool would
/// oversubscribe the host.
pub fn forward_to_central_on(
    exec: &ShardExecutor,
    captures_by_site: Vec<Vec<SiteCapture>>,
) -> Vec<RawReply> {
    let per_site: Vec<Vec<RawReply>> = exec.run_sharded(captures_by_site.len(), |site| {
        let caps = &captures_by_site[site]; // vp-lint: allow(g1): the executor only calls site < the number of site logs.
        // One pre-sized allocation per site worker (replies never outnumber
        // captures); parsing filters without regrowth.
        let mut replies = Vec::with_capacity(caps.len());
        replies.extend(caps.iter().filter_map(parse_capture));
        replies
    });
    // Site vectors come back in site-id order; the final sort makes the
    // arrival timeline explicit and is total on (at, site, src).
    let mut all: Vec<RawReply> = Vec::with_capacity(per_site.iter().map(Vec::len).sum());
    for site_replies in per_site {
        all.extend(site_replies);
    }
    all.sort_by_key(|r| (r.at, r.site, r.src));
    all
}

/// Splits a flat capture log into per-site logs (what each site's capture
/// box would have recorded locally).
pub fn split_by_site(captures: Vec<SiteCapture>, num_sites: usize) -> Vec<Vec<SiteCapture>> {
    let mut by_site: Vec<Vec<SiteCapture>> = (0..num_sites).map(|_| Vec::new()).collect();
    for cap in captures {
        let idx = cap.site.index();
        assert!(idx < num_sites, "capture at unknown site {}", cap.site);
        by_site[idx].push(cap); // vp-lint: allow(g1): idx is asserted in range on the line above.
    }
    by_site
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use vp_packet::{Ipv4Packet, Protocol};

    fn reply_capture(site: u8, at: u64, src: u32, ident: u16, index: u64) -> SiteCapture {
        let icmp = IcmpMessage::EchoReply {
            ident,
            seq: 0,
            payload: crate::prober::Prober::encode_payload(index),
        };
        SiteCapture {
            site: SiteId(site),
            at: SimTime(at),
            packet: Ipv4Packet::new(
                Ipv4Addr(src),
                Ipv4Addr::new(240, 0, 0, 1),
                Protocol::Icmp,
                icmp.emit(),
            ),
        }
    }

    #[test]
    fn parse_extracts_fields() {
        let cap = reply_capture(2, 55, 0x01020304, 9, 42);
        let r = parse_capture(&cap).unwrap();
        assert_eq!(r.site, SiteId(2));
        assert_eq!(r.at, SimTime(55));
        assert_eq!(r.src, Ipv4Addr(0x01020304));
        assert_eq!(r.ident, 9);
        assert_eq!(r.index, Some(42));
    }

    #[test]
    fn parse_drops_requests_and_non_icmp() {
        let req = IcmpMessage::echo_request(1, 2, Bytes::new());
        let cap = SiteCapture {
            site: SiteId(0),
            at: SimTime(0),
            packet: Ipv4Packet::new(Ipv4Addr(1), Ipv4Addr(2), Protocol::Icmp, req.emit()),
        };
        assert!(parse_capture(&cap).is_none());
        let udp = SiteCapture {
            site: SiteId(0),
            at: SimTime(0),
            packet: Ipv4Packet::new(Ipv4Addr(1), Ipv4Addr(2), Protocol::Udp, Bytes::new()),
        };
        assert!(parse_capture(&udp).is_none());
    }

    #[test]
    fn foreign_payload_has_no_index() {
        let icmp = IcmpMessage::EchoReply {
            ident: 1,
            seq: 2,
            payload: Bytes::from_static(b"something else"),
        };
        let cap = SiteCapture {
            site: SiteId(0),
            at: SimTime(0),
            packet: Ipv4Packet::new(Ipv4Addr(1), Ipv4Addr(2), Protocol::Icmp, icmp.emit()),
        };
        let r = parse_capture(&cap).unwrap();
        assert_eq!(r.index, None);
    }

    #[test]
    fn forwarding_merges_all_sites_deterministically() {
        let caps = vec![
            vec![reply_capture(0, 30, 10, 1, 0), reply_capture(0, 10, 11, 1, 1)],
            vec![reply_capture(1, 20, 12, 1, 2)],
            vec![],
        ];
        let merged = forward_to_central(caps.clone());
        assert_eq!(merged.len(), 3);
        // Sorted by time regardless of site thread interleaving.
        assert_eq!(merged[0].at, SimTime(10));
        assert_eq!(merged[1].at, SimTime(20));
        assert_eq!(merged[2].at, SimTime(30));
        // Re-run gives identical output.
        assert_eq!(forward_to_central(caps), merged);
    }

    #[test]
    fn split_by_site_partitions() {
        let flat = vec![
            reply_capture(0, 1, 1, 1, 0),
            reply_capture(2, 2, 2, 1, 1),
            reply_capture(0, 3, 3, 1, 2),
        ];
        let split = split_by_site(flat, 3);
        assert_eq!(split[0].len(), 2);
        assert_eq!(split[1].len(), 0);
        assert_eq!(split[2].len(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn split_rejects_out_of_range_site() {
        split_by_site(vec![reply_capture(5, 1, 1, 1, 0)], 3);
    }
}
