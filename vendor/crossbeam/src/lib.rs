//! Minimal offline stand-in for `crossbeam`: the `channel::bounded`
//! multi-producer channel used by the collector, layered over
//! `std::sync::mpsc::sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    /// Error returned when the receiving side has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking iterator until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }

        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.inner.recv()
        }
    }

    /// A bounded channel with `cap` slots.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_from_threads() {
            let (tx, rx) = bounded::<u64>(4);
            std::thread::scope(|scope| {
                for t in 0..3u64 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 1000 + i).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got: Vec<u64> = rx.iter().collect();
                got.sort_unstable();
                assert_eq!(got.len(), 300);
                assert_eq!(got[0], 0);
                assert_eq!(*got.last().unwrap(), 2099);
            });
        }
    }
}
