//! Minimal offline stand-in for `rand_pcg`: the PCG XSL RR 128/64
//! generator ("Pcg64"), O'Neill 2014.
//!
//! Streams are deterministic per seed but not bit-compatible with the
//! upstream crate; all golden data in this workspace is derived from this
//! implementation.

use rand::{RngCore, SeedableRng};

const MULTIPLIER: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// PCG XSL RR 128/64: 128-bit LCG state, 64-bit xorshift-rotate output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    increment: u128,
}

impl Pcg64 {
    /// Builds a generator from an initial state and stream id.
    pub fn new(state: u128, stream: u128) -> Pcg64 {
        let increment = (stream << 1) | 1;
        let mut pcg = Pcg64 {
            state: state.wrapping_add(increment),
            increment,
        };
        pcg.step();
        pcg
    }

    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(MULTIPLIER)
            .wrapping_add(self.increment);
    }

    fn output(&self) -> u64 {
        let rot = (self.state >> 122) as u32;
        let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
        xsl.rotate_right(rot)
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.step();
        self.output()
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Pcg64 {
        let state = u128::from_le_bytes(seed[..16].try_into().unwrap());
        let stream = u128::from_le_bytes(seed[16..].try_into().unwrap());
        Pcg64::new(state, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        let mut c = Pcg64::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg64::new(1, 1);
        let mut b = Pcg64::new(1, 2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reasonable_uniformity() {
        let mut r = Pcg64::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let ones = (0..n).filter(|_| r.gen_bool(0.25)).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
