//! Minimal offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` macro this
//! workspace uses. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name and case index) so failures reproduce;
//! there is no shrinking — a failing case panics with its inputs' debug
//! representation where available.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64-based test RNG. Deterministic per (test name, case index).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name_and_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, bound) for bound > 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

/// Deterministic RNG for one generated test case.
pub fn test_rng(name: &str, case: u64) -> TestRng {
    TestRng::from_name_and_case(name, case)
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying the predicate (re-draws, bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric ranges -------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start, self.end);
                assert!(lo < hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// any::<T>() -----------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its value space.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

// Tuples ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// String strategies from a character-class pattern ---------------------------

/// `&str` patterns of the form `"[class]{min,max}"` (a small subset of
/// proptest's regex strategies) generate matching `String`s.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parse `[a-z0-9-]{1,20}`-style patterns: one character class and a
/// `{min,max}` or `{n}` repetition. Returns the expanded alphabet.
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let rep = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = rep.trim().parse().ok()?;
            (n, n)
        }
    };

    let cs: Vec<char> = class.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(cs[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() || min > max {
        return None;
    }
    Some((alphabet, min, max))
}

// Collections ----------------------------------------------------------------

/// `prop::collection` and the prelude's `prop` module.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `size.start..size.end` elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Namespace mirror so `prop::collection::vec` resolves.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Runner config and macros
// ---------------------------------------------------------------------------

/// How many cases each property runs. Mirrors upstream's field name.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        // Callers annotate each fn with `#[test]` themselves (upstream
        // proptest style) — do not inject a second harness registration.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::test_rng(stringify!($name), case);
                let ( $($arg,)+ ) = (
                    $( $crate::Strategy::generate(&($strat), &mut __rng), )+
                );
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert within a property body. Maps to a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges", 0);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
            let i = (0u8..=32).generate(&mut rng);
            assert!(i <= 32);
        }
    }

    #[test]
    fn string_pattern_generates_matching() {
        let mut rng = crate::test_rng("strings", 0);
        let strat = "[a-z0-9-]{1,20}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        let printable = "[ -~]{0,80}";
        for _ in 0..200 {
            let s = Strategy::generate(&printable, &mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn determinism_per_name_and_case() {
        let a: Vec<u64> = {
            let mut rng = crate::test_rng("t", 3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = crate::test_rng("t", 3);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut rng = crate::test_rng("t", 4);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(
            x in any::<u32>(),
            v in collection::vec(any::<u8>(), 0..10),
            (a, b) in (0u16..100, 0u16..=5),
            s in "[a-z]{1,4}",
        ) {
            prop_assert!(u64::from(x) <= u64::from(u32::MAX));
            prop_assert!(v.len() < 10);
            prop_assert!(a < 100 && b <= 5);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
        }
    }
}
