//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_bool`,
//! `gen_range`) and [`distributions::WeightedIndex`]. Generators live in
//! the sibling `rand_pcg` stand-in.
//!
//! The generated streams are deterministic but are NOT bit-compatible with
//! upstream rand; every consumer in this workspace derives its golden data
//! from these streams, so only internal reproducibility matters.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (like upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform unit sample in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Types producible by `Rng::gen`.
pub trait FromRandom {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as u128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128) - (lo as i128) + 1) as u128;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // `p == 1.0` must always fire; unit_f64 < 1.0 guarantees it.
        unit_f64(self) < p
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: &D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::{Rng, RngCore};
    use std::borrow::Borrow;

    /// A sampling distribution.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Weighted index distribution over `f64` weights (cumulative-sum +
    /// binary search).
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    /// Error for invalid weight sets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct WeightedError(pub &'static str);

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for WeightedError {}

    impl WeightedIndex {
        pub fn new<I>(weights: I) -> Result<WeightedIndex, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if w < 0.0 || !w.is_finite() {
                    return Err(WeightedError("invalid weight"));
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError("no positive weights"));
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = rng.gen_range(0.0..self.total);
            match self.cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
                // Exact hit on a cumulative boundary belongs to the next bin.
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i,
            }
        }
    }
}

/// Named generator types (the `rand::rngs::StdRng` subset).
pub mod rngs {
    use crate::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for upstream's `StdRng` (not bit-compatible;
    /// uses a SplitMix64 stream, which is plenty for tests).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            StdRng { state: u64::from_le_bytes(first) ^ 0x5bd1_e995_9e37_79b9 }
        }
    }
}

/// Sequence-sampling helpers (the `rand::seq::index::sample` subset).
pub mod seq {
    pub mod index {
        use crate::RngCore;

        /// Distinct indices sampled from `0..length`.
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` by partial
        /// Fisher-Yates shuffle (order is the selection order).
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (length - i);
                pool.swap(i, j);
                picked.push(pool[i]);
            }
            IndexVec(picked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            splitmix64(&mut s)
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v = r.gen_range(3u8..=9);
            assert!((3..=9).contains(&v));
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = Counter(3);
        let d = WeightedIndex::new(&[1.0f64, 0.0, 3.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
        assert!(counts[0] > 0);
        assert!(WeightedIndex::new(std::iter::empty::<f64>()).is_err());
        assert!(WeightedIndex::new(&[0.0f64]).is_err());
    }
}
