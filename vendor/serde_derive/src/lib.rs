//! `#[derive(Serialize, Deserialize)]` for the minimal serde stand-in.
//!
//! Implemented directly over `proc_macro::TokenStream` (no syn/quote in
//! this offline environment). Supports the shapes this workspace uses:
//!
//! * structs with named fields → JSON objects
//! * tuple structs with one field (newtypes) → the inner value
//!   (matching upstream's newtype behaviour and `#[serde(transparent)]`)
//! * tuple structs with several fields → arrays
//! * enums with unit variants only → variant-name strings
//! * at most simple type generics (`<K: Ord>` style bounds)

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
struct Input {
    name: String,
    /// Raw generic parameter text, e.g. `K: Ord` (empty when non-generic).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    // Optional generics.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut current = String::new();
            while depth > 0 {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        depth += 1;
                        current.push('<');
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            current.push('>');
                        }
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        generics.push(current.trim().to_owned());
                        current = String::new();
                    }
                    Some(t) => {
                        current.push_str(&t.to_string());
                        current.push(' ');
                    }
                    None => panic!("serde_derive: unterminated generics on {name}"),
                }
                i += 1;
            }
            if !current.trim().is_empty() {
                generics.push(current.trim().to_owned());
            }
        }
    }

    let kind = match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::UnitEnum(parse_unit_variants(g.stream(), &name))
            }
            other => panic!("serde_derive: expected enum body for {name}, got {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for {other}"),
    };

    Input { name, generics, kind }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name, then `: Type` up to the next top-level comma.
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        fields.push(fname);
        i += 1;
        // Expect ':'.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field, got {other:?}"),
        }
        // Skip the type, angle-depth aware (commas inside `<...>` belong
        // to the type, e.g. BTreeMap<K, V>).
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

/// Variant names of a unit-only enum body.
fn parse_unit_variants(body: TokenStream, name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    panic!(
                        "serde_derive: enum {name} has a non-unit variant; \
                         only unit enums are supported by this stand-in"
                    );
                }
                // `= discriminant` would also be unsupported.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        panic!("serde_derive: enum {name} has explicit discriminants");
                    }
                }
            }
            other => panic!("serde_derive: unexpected token in enum {name}: {other:?}"),
        }
    }
    variants
}

/// `(impl_generics, type_args)` with `extra_bound` appended to each param.
fn generics_for(input: &Input, extra_bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), String::new());
    }
    let mut impl_params = Vec::new();
    let mut args = Vec::new();
    for p in &input.generics {
        let (name, bounds) = match p.split_once(':') {
            Some((n, b)) => (n.trim(), b.trim()),
            None => (p.trim(), ""),
        };
        args.push(name.to_owned());
        if bounds.is_empty() {
            impl_params.push(format!("{name}: {extra_bound}"));
        } else {
            impl_params.push(format!("{name}: {bounds} + {extra_bound}"));
        }
    }
    (format!("<{}>", impl_params.join(", ")), format!("<{}>", args.join(", ")))
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let (ig, ta) = generics_for(&input, "::serde::Serialize");
    let body = match &input.kind {
        Kind::Named(fields) => {
            let mut s = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\""))
                .collect();
            format!(
                "::serde::Value::Str(match self {{ {} }}.to_string())",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl {ig} ::serde::Serialize for {name} {ta} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let (ig, ta) = generics_for(&input, "::serde::Deserialize");
    let body = match &input.kind {
        Kind::Named(fields) => {
            let mut s = format!(
                "let m = match v {{ ::serde::Value::Object(m) => m, other => return \
                 ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"expected object for {name}, found {{:?}}\", other))) }};\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(\
                     m.get(\"{f}\").unwrap_or(&::serde::Value::Null)).map_err(|e| \
                     ::serde::Error::msg(format!(\"{name}.{f}: {{e}}\")))?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Tuple(n) => {
            let mut s = format!(
                "let a = match v {{ ::serde::Value::Array(a) => a, other => return \
                 ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"expected array for {name}, found {{:?}}\", other))) }};\n\
                 if a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::msg(\"wrong tuple arity for {name}\")); }}\n"
            );
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            ));
            s
        }
        Kind::UnitEnum(variants) => {
            let mut s = format!(
                "let s = match v {{ ::serde::Value::Str(s) => s, other => return \
                 ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"expected string for {name}, found {{:?}}\", other))) }};\n\
                 match s.as_str() {{\n"
            );
            for var in variants {
                s.push_str(&format!(
                    "\"{var}\" => ::std::result::Result::Ok({name}::{var}),\n"
                ));
            }
            s.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n}}"
            ));
            s
        }
    };
    format!(
        "impl {ig} ::serde::Deserialize for {name} {ta} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                {body}\n\
            }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}
