//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the vp-bench crate uses:
//! groups, per-benchmark sample counts, element throughput, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is plain
//! wall-clock: each sample runs the routine for an adaptively chosen
//! iteration count and the median per-iteration time is reported.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 20, Duration::from_millis(400), None, &mut f);
        self
    }
}

/// Per-element/byte throughput annotation.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

/// Accepts `&str`, `String`, or `BenchmarkId` as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_bench(&label, self.sample_size, self.measurement_time, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.text);
        run_bench(
            &label,
            self.sample_size,
            self.measurement_time,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark routine; `iter` runs and times the closure.
pub struct Bencher {
    /// Iterations to run this sample.
    iters: u64,
    /// Wall-clock spent inside `iter` this sample.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: time one iteration, then size samples so the whole
    // benchmark stays within ~measurement_time.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = measurement_time.div_f64(sample_size as f64);
    let iters = (per_sample.as_secs_f64() / once.as_secs_f64()).clamp(1.0, 1e7) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = *per_iter_ns.last().unwrap();

    let thrpt = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {} elem/s", format_count(n as f64 / (median * 1e-9)))
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {}B/s", format_count(n as f64 / (median * 1e-9)))
        }
        _ => String::new(),
    };
    println!(
        "{label:<50} time: [{} {} {}]{thrpt}",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        g.measurement_time(Duration::from_millis(10));
        g.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert!(count > 0);
    }
}
