//! Minimal offline stand-in for `serde_json`.
//!
//! Re-uses the `Value` tree from the local `serde` stand-in and adds the
//! JSON text layer: a recursive-descent parser, a serializer (compact and
//! pretty), and the `json!` macro. Only the API surface this workspace
//! uses is provided.

pub use serde::{Error, Value};

/// Convert any serializable value into a `Value` tree.
///
/// Mirrors upstream's fallible signature even though the value-tree
/// conversion itself cannot fail here.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a human-readable JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => out.push_str(&format_f64(*f)),
        Value::Str(s) => write_string(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// JSON float formatting: non-finite values become null (as upstream),
/// integral floats keep a trailing `.0` so they round-trip as floats.
fn format_f64(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(a));
        }
        loop {
            a.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(a));
                }
                _ => return Err(Error::msg(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last hex digit
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u`; leaves `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a `Value` from a JSON-ish literal. Supports object literals with
/// string-literal keys (nested bare `{...}`/`[...]` literals included),
/// `null`, and arbitrary serializable expressions such as nested `json!`
/// calls or iterator chains.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- entry points ----
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut array: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@array array $($tt)*);
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object: ::std::collections::BTreeMap<::std::string::String, $crate::Value> =
            ::std::collections::BTreeMap::new();
        $crate::json_internal!(@object object $($tt)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };

    // ---- array element muncher ----
    (@array $array:ident) => {};
    (@array $array:ident null $(, $($rest:tt)*)?) => {
        $array.push($crate::Value::Null);
        $crate::json_internal!(@array $array $($($rest)*)?);
    };
    (@array $array:ident [ $($elem:tt)* ] $(, $($rest:tt)*)?) => {
        $array.push($crate::json_internal!([ $($elem)* ]));
        $crate::json_internal!(@array $array $($($rest)*)?);
    };
    (@array $array:ident { $($elem:tt)* } $(, $($rest:tt)*)?) => {
        $array.push($crate::json_internal!({ $($elem)* }));
        $crate::json_internal!(@array $array $($($rest)*)?);
    };
    (@array $array:ident $value:expr , $($rest:tt)*) => {
        $array.push($crate::json_internal!($value));
        $crate::json_internal!(@array $array $($rest)*);
    };
    (@array $array:ident $value:expr) => {
        $array.push($crate::json_internal!($value));
    };

    // ---- object entry muncher (keys are string literals) ----
    (@object $object:ident) => {};
    (@object $object:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $object.insert($key.to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $object $($($rest)*)?);
    };
    (@object $object:ident $key:literal : [ $($elem:tt)* ] $(, $($rest:tt)*)?) => {
        $object.insert($key.to_string(), $crate::json_internal!([ $($elem)* ]));
        $crate::json_internal!(@object $object $($($rest)*)?);
    };
    (@object $object:ident $key:literal : { $($entry:tt)* } $(, $($rest:tt)*)?) => {
        $object.insert($key.to_string(), $crate::json_internal!({ $($entry)* }));
        $crate::json_internal!(@object $object $($($rest)*)?);
    };
    (@object $object:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $object.insert($key.to_string(), $crate::json_internal!($value));
        $crate::json_internal!(@object $object $($rest)*);
    };
    (@object $object:ident $key:literal : $value:expr) => {
        $object.insert($key.to_string(), $crate::json_internal!($value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "broot",
            "sites": ["lax", "mia"],
            "count": 3u64,
            "neg": -7i64,
            "frac": 0.25,
            "whole": 2.0,
            "flag": true,
            "nothing": json!(null),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        // Integral float keeps its .0 marker.
        assert!(text.contains("2.0"), "{text}");
    }

    #[test]
    fn nested_literals_and_expressions() {
        let qps = 123.5f64;
        let v = json!({
            "stats": { "q_day": qps * 2.0, "q_s": qps },
            "tags": ["a", "b", { "deep": null }],
            "rows": (0..3u64).map(|i| json!({ "i": i })).collect::<Vec<_>>(),
        });
        assert_eq!(v["stats"]["q_s"].as_f64().unwrap(), 123.5);
        assert_eq!(v["tags"][2]["deep"], Value::Null);
        assert_eq!(v["rows"][2]["i"].as_u64().unwrap(), 2);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": [1u64, 2u64] });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1,\n    2\n  ]\n"), "{text}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\n\"b\" é 😀"}"#).unwrap();
        assert_eq!(v["s"].as_str().unwrap(), "a\n\"b\" \u{e9} \u{1f600}");
    }

    #[test]
    fn number_variants() {
        let v: Value = from_str("[0, -3, 18446744073709551615, 1.5, 2e3]").unwrap();
        let a = match &v {
            Value::Array(a) => a,
            _ => panic!(),
        };
        assert_eq!(a[0], Value::U64(0));
        assert_eq!(a[1], Value::I64(-3));
        assert_eq!(a[2], Value::U64(u64::MAX));
        assert_eq!(a[3], Value::F64(1.5));
        assert_eq!(a[4], Value::F64(2000.0));
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
