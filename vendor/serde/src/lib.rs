//! Minimal offline stand-in for `serde`.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this
//! stand-in routes everything through a JSON-shaped [`Value`] tree:
//! [`Serialize`] renders a value into a `Value`, [`Deserialize`] rebuilds
//! one from it. The sibling `serde_json` stand-in handles text
//! (de)serialization of `Value`. The `#[derive(Serialize, Deserialize)]`
//! macros live in `serde_derive` and are re-exported here, mirroring the
//! upstream crate layout so `use serde::{Serialize, Deserialize}` works
//! unchanged.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Objects are sorted by key (like upstream
/// serde_json's default `Map`), which keeps serialized output stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member access that returns `Null` for misses (like serde_json's
    /// `Index` impl, read-only form).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

// ---- primitives ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error(format!("expected bool, found {}", v.kind())))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error(format!(
                    "expected unsigned integer, found {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| Error(format!("{u} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error(format!(
                    "expected integer, found {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error(format!("{i} out of range")))
            }
        }
    )*};
}
impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error(format!("expected number, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error(format!(
            "expected string, found {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// Upstream serde deserializes `&'static str` zero-copy from `'static`
/// input; this value-tree stand-in has no borrowed input to point into,
/// so it leaks the owned string instead. Only const-table types (e.g.
/// country records) derive this, and they are never deserialized at
/// runtime — the impl exists so the derives compile.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---- references & containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+);)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error("expected array for tuple".into()))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if a.len() != LEN {
                    return Err(Error(format!("expected {LEN}-tuple, found {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A);
    (0 A, 1 B);
    (0 A, 1 B, 2 C);
    (0 A, 1 B, 2 C, 3 D);
}

/// Converts a serialized key into a JSON object key. Strings pass through;
/// integers render in decimal (like serde_json's integer-keyed maps).
fn object_key<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::U64(u) => u.to_string(),
        Value::I64(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be a string or integer, got {}", other.kind()),
    }
}

/// Parses an object key back through `K`'s deserializer: first as a
/// string, then as an integer rendered from decimal.
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(i)) {
            return Ok(k);
        }
    }
    Err(Error(format!("cannot interpret object key {s:?}")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (object_key(k), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (object_key(k), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::hash::Hash + Eq, S: std::hash::BuildHasher + Default> Deserialize
    for HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&3u8.to_value()).unwrap(), Some(3));
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn integer_keyed_maps_use_string_keys() {
        let mut m = HashMap::new();
        m.insert(7u32, "x".to_owned());
        let v = m.to_value();
        assert_eq!(v.get("7").and_then(Value::as_str), Some("x"));
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_and_vecs() {
        let x = vec![(1u8, "a".to_owned()), (2, "b".to_owned())];
        let back: Vec<(u8, String)> = Deserialize::from_value(&x.to_value()).unwrap();
        assert_eq!(back, x);
    }
}
