//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the API this workspace uses: [`Bytes`] (a
//! cheaply clonable, immutable byte buffer), [`BytesMut`] (a growable
//! buffer) and the big-endian writer half of [`BufMut`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer: a refcounted view
/// (`Arc` + offset/length) into a shared backing allocation, so both
/// `clone` and `slice` are refcount bumps, never copies. That matches
/// the real crate's semantics and is what lets a batch encoder hand out
/// per-message views of one frozen buffer without allocating per
/// message.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Bytes {
    fn from_vec(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::new(v), off: 0, len }
    }

    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// A buffer borrowing from a static slice (copied here; semantics match).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    /// A buffer holding a copy of `s`.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy view of the given subrange: shares the backing
    /// allocation with `self` instead of copying it.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of bounds of {}",
            range.start,
            range.end,
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> BytesMut {
        BytesMut { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

/// Big-endian writer interface (the subset used by the packet encoders).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_eq() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u16(0xabcd);
        m.put_u8(7);
        let b = m.freeze();
        assert_eq!(b, &[0xab, 0xcd, 7][..]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn slice_and_debug() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.slice(1..3), &b"el"[..]);
        assert_eq!(format!("{b:?}"), "b\"hello\"");
    }

    #[test]
    fn slice_shares_backing_allocation() {
        let b = Bytes::from_static(b"abcdef");
        let s = b.slice(2..5);
        assert_eq!(s, &b"cde"[..]);
        assert!(Arc::ptr_eq(&b.data, &s.data), "slice must not copy");
        let ss = s.slice(1..2);
        assert_eq!(ss, &b"d"[..]);
        assert!(Arc::ptr_eq(&b.data, &ss.data), "nested slice must not copy");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from_static(b"ab").slice(1..4);
    }
}
